#!/usr/bin/env python3
"""Guard the BENCH_*.json perf-trajectory artifacts against silent decay.

CI runs every sweep bench with --quick --jobs 2 and archives the JSON
ResultSets.  A bench that stops emitting a series, drops a metric field, or
writes an empty artifact would silently break the perf trajectory without
failing the build — this script fails the job instead, by comparing each
artifact against a committed schema baseline (bench/bench_schema.json).

Checks per bench id in the baseline:
  * BENCH_<id>.json exists, parses, and declares the bench id;
  * every baseline series is present with at least one point;
  * every point of a series carries at least the baseline's field set
    (the intersection of fields across that series' points at the time the
    baseline was committed — per-arm conditional fields stay allowed);
  * a series the baseline marks as replicated ("aggregate_fields", from
    SweepSpec::replications) still carries its "aggregates" error bars:
    every entry has n >= 1 and each baseline aggregate field keeps its
    mean/sd/min/max keys;
  * mode_parity: in every series whose name contains "parity" (the
    packet-vs-flow-aggregate validation sweeps, e1's E1d / e3's E3d),
    the two workload engines agree on the pinned metrics within 2%;
  * churn_soak: every point that reports a "flaps" field (the DFZ churn
    soak, f2's F2f/F2g) actually executed a nonzero flap plan — a soak
    that silently degenerates to zero events would still emit a
    schema-valid artifact.

Usage:
  check_bench.py --dir build                 # verify against the baseline
  check_bench.py --dir build --update        # regenerate the baseline

Perf ratchet (--ratchet): beyond the schema, CI also guards the *speed* of
the hot paths.  The bench run archives two kinds of timing next to the
records — BENCH_M1.json carries ns/op per micro, and each bench invoked
with --timing writes a TIMING_<id>.json wall-clock sidecar (never part of
BENCH_<id>.json, so records stay byte-comparable).  --ratchet compares both
against the committed trajectory under bench/trajectory/, normalising by
the "checksum/1500" anchor micro first: the anchor measures raw host speed
(pure arithmetic, untouched by any optimisation here), so trajectory
numbers recorded on one machine transfer to another.  A value is a
regression when

  current > archived * (anchor_now / anchor_archived) * tolerance

with tolerance 1.75x for micros and 1.9x for wall-clock — both below 2x,
so CI's injected-2x selftest (--inject 2.0, applied to everything except
the anchor) must fail, proving the gate is live.  --ratchet also asserts
the incremental re-convergence claim directly: the M1a pair
"flap reconverge/full-replay" / "flap reconverge/incremental" must keep a
>= 5x ratio (a pure ratio — host- and inject-neutral).

  check_bench.py --dir build --ratchet             # gate against trajectory
  check_bench.py --dir build --ratchet --inject 2  # selftest: must fail
  check_bench.py --dir build --ratchet-update      # refresh the trajectory
"""

import argparse
import json
import pathlib
import sys


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), None
    except FileNotFoundError:
        return None, "missing"
    except json.JSONDecodeError as e:
        return None, f"unparseable JSON ({e})"


def series_fields(series):
    """The field names every point of the series carries (intersection)."""
    field_sets = [set(point.get("fields", {})) for point in series.get("points", [])]
    if not field_sets:
        return []
    common = set.intersection(*field_sets)
    # Keep first-appearance order from the first point for stable baselines.
    first = list(series["points"][0].get("fields", {}))
    return [name for name in first if name in common]


def series_aggregate_fields(series):
    """The error-barred metric names every aggregate entry carries."""
    field_sets = [set(entry.get("fields", {}))
                  for entry in series.get("aggregates", [])]
    if not field_sets:
        return []
    common = set.intersection(*field_sets)
    first = list(series["aggregates"][0].get("fields", {}))
    return [name for name in first if name in common]


def series_schema(series):
    schema = {"fields": series_fields(series)}
    aggregate_fields = series_aggregate_fields(series)
    if aggregate_fields:
        schema["aggregate_fields"] = aggregate_fields
    return schema


def build_schema(directory):
    schema = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        artifact, error = load_artifact(path)
        if error:
            print(f"error: {path.name}: {error}", file=sys.stderr)
            sys.exit(1)
        bench_id = artifact.get("bench") or path.stem.removeprefix("BENCH_")
        schema[bench_id] = {
            "series": {
                series["name"]: series_schema(series)
                for series in artifact.get("series", [])
            }
        }
    return schema


# --- mode_parity guard -------------------------------------------------------
#
# The flow-aggregate engine is only trustworthy if it reproduces packet-mode
# results where both engines can run (DESIGN.md "Flow-aggregate workloads").
# Every series whose name contains "parity" carries a workload-mode axis;
# points are paired by their series label minus the mode token and each pair
# must agree on:
#   * "drop rate"          — within 2% relative or 5e-4 absolute (the floor
#     covers Poisson count noise between the engines' independent arrival
#     streams at single-digit drop counts);
#   * "t_setup mean (ms)"  — within 2% relative;
#   * "t_setup p99 (ms)"   — within 2% relative, only for arms whose drop
#     rate exceeds 1e-3: miss/RTO-dominated tails are stable, while warm
#     p99s sit on histogram bucket edges where a single boundary session
#     flips the reported value.
# Pairs with fewer than 500 packet-mode sessions are skipped so reduced
# smoke runs cannot produce false alarms.
MODE_PARITY_RTOL = 0.02
MODE_PARITY_DROP_ATOL = 5e-4
MODE_PARITY_P99_MIN_DROP_RATE = 1e-3
MODE_PARITY_MIN_SESSIONS = 500
WORKLOAD_MODES = ("packet", "aggregate")


def parity_pair_key(series_label):
    """The point's coordinates with the workload-mode token removed."""
    tokens = [token.strip() for token in series_label.split("/")]
    return " / ".join(t for t in tokens if t not in WORKLOAD_MODES)


def check_mode_parity(artifact, file_name):
    problems = []
    for series in artifact.get("series", []):
        name = series.get("name", "")
        if "parity" not in name.lower():
            continue
        pairs = {}
        for point in series.get("points", []):
            mode = point.get("fields", {}).get("mode")
            if mode in WORKLOAD_MODES:
                key = parity_pair_key(point.get("series", ""))
                pairs.setdefault(key, {})[mode] = point
        if not pairs:
            problems.append(
                f"{file_name}: parity series '{name}' has no workload-mode "
                "points to pair"
            )
            continue
        for key, by_mode in sorted(pairs.items()):
            missing = [m for m in WORKLOAD_MODES if m not in by_mode]
            if missing:
                problems.append(
                    f"{file_name}: series '{name}' point '{key}' lost its "
                    f"{'/'.join(missing)}-mode twin"
                )
                continue
            packet = by_mode["packet"]["fields"]
            aggregate = by_mode["aggregate"]["fields"]
            if packet.get("sessions", 0) < MODE_PARITY_MIN_SESSIONS:
                continue

            def compare(metric, tolerance_floor=0.0):
                pv = packet.get(metric)
                av = aggregate.get(metric)
                if pv is None or av is None:
                    problems.append(
                        f"{file_name}: series '{name}' point '{key}' dropped "
                        f"parity metric '{metric}'"
                    )
                    return
                allowed = max(MODE_PARITY_RTOL * abs(pv), tolerance_floor)
                if abs(av - pv) > allowed:
                    problems.append(
                        f"{file_name}: series '{name}' point '{key}': "
                        f"'{metric}' diverges across engines "
                        f"(packet {pv:.6g}, aggregate {av:.6g}, "
                        f"allowed ±{allowed:.6g})"
                    )

            compare("drop rate", MODE_PARITY_DROP_ATOL)
            compare("t_setup mean (ms)")
            if min(packet.get("drop rate", 0.0),
                   aggregate.get("drop rate", 0.0)) >= \
                    MODE_PARITY_P99_MIN_DROP_RATE:
                compare("t_setup p99 (ms)")
    return problems


def check_churn_soak(artifact, file_name):
    """Every point reporting a 'flaps' count must have executed flaps."""
    problems = []
    for series in artifact.get("series", []):
        name = series.get("name", "")
        for point in series.get("points", []):
            fields = point.get("fields", {})
            if "flaps" not in fields:
                continue
            flaps = fields["flaps"]
            if not isinstance(flaps, (int, float)) or flaps <= 0:
                problems.append(
                    f"{file_name}: series '{name}' point "
                    f"{point.get('index')} reports a zero/invalid flap "
                    f"count ({flaps!r}) — the churn plan never ran"
                )
                break
    return problems


def check(directory, baseline):
    problems = []
    for bench_id, expected in sorted(baseline.items()):
        path = directory / f"BENCH_{bench_id}.json"
        artifact, error = load_artifact(path)
        if error:
            problems.append(f"{path.name}: {error}")
            continue
        declared = artifact.get("bench")
        if declared != bench_id:
            problems.append(
                f"{path.name}: declares bench id '{declared}', expected "
                f"'{bench_id}'"
            )
            continue
        series_by_name = {s.get("name"): s for s in artifact.get("series", [])}
        if not series_by_name:
            problems.append(f"{path.name}: no series (empty artifact)")
            continue
        problems.extend(check_mode_parity(artifact, path.name))
        problems.extend(check_churn_soak(artifact, path.name))
        # Series unknown to the baseline are as unguarded as unknown files:
        # force the baseline to grow with the bench.
        for name in series_by_name:
            if name not in expected["series"]:
                problems.append(
                    f"{path.name}: series '{name}' not in the schema baseline "
                    "(regenerate with --update)"
                )
        for name, spec in expected["series"].items():
            series = series_by_name.get(name)
            if series is None:
                problems.append(f"{path.name}: series '{name}' is missing")
                continue
            points = series.get("points", [])
            if not points:
                problems.append(f"{path.name}: series '{name}' has no points")
                continue
            required = set(spec["fields"])
            for point in points:
                missing = required - set(point.get("fields", {}))
                if missing:
                    problems.append(
                        f"{path.name}: series '{name}' point {point.get('index')} "
                        f"dropped fields: {', '.join(sorted(missing))}"
                    )
                    break
            required_aggregates = set(spec.get("aggregate_fields", []))
            if required_aggregates:
                aggregates = series.get("aggregates", [])
                if not aggregates:
                    problems.append(
                        f"{path.name}: series '{name}' lost its replication "
                        "aggregates (error bars)"
                    )
                for entry in aggregates:
                    if entry.get("n", 0) < 1:
                        problems.append(
                            f"{path.name}: series '{name}' aggregate group "
                            f"{entry.get('group')} has no replicas"
                        )
                        break
                    bad = [
                        agg_name
                        for agg_name in required_aggregates
                        if set(entry.get("fields", {}).get(agg_name, {}))
                        < {"mean", "sd", "min", "max"}
                    ]
                    if bad:
                        problems.append(
                            f"{path.name}: series '{name}' aggregate group "
                            f"{entry.get('group')} dropped error-bar fields: "
                            f"{', '.join(sorted(bad))}"
                        )
                        break
    # An artifact with no baseline entry is unguarded: a new bench's JSON
    # could be empty or corrupt without failing CI.  Force the baseline to
    # be regenerated alongside the bench.
    known = {f"BENCH_{bench_id}.json" for bench_id in baseline}
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name not in known:
            problems.append(
                f"{path.name}: not in the schema baseline (regenerate with "
                "--update)"
            )
    return problems


# --- perf ratchet ------------------------------------------------------------

RATCHET_ANCHOR = "checksum/1500"
# Below 2.0 so the CI --inject 2.0 selftest must trip the gate.  Micros are
# single-threaded and anchor-normalised, so 1.75x headroom absorbs quick-run
# jitter; wall-clocks also see scheduler noise from --jobs, hence 1.9x.
RATCHET_MICRO_TOLERANCE = 1.75
RATCHET_WALL_TOLERANCE = 1.9
RATCHET_WALL_BENCHES = ("F1", "F2", "E4")
# The incremental re-convergence claim as an absolute gate: one flap on a
# 1k-stub fabric must re-converge at least this much faster than rebuilding
# and re-converging the whole world.  A ratio of raw ns/op values, so it is
# host-independent and --inject-neutral (both arms scale together).
FLAP_PAIR_FULL = "flap reconverge/full-replay"
FLAP_PAIR_INCREMENTAL = "flap reconverge/incremental"
FLAP_PAIR_MIN_RATIO = 5.0
# The export update-group claim, same shape: a flap at a 64-session hub
# must fan out measurably faster computing each UPDATE once per group than
# once per neighbor.
EXPORT_PAIR_PER_NEIGHBOR = "export fanout/per-neighbor"
EXPORT_PAIR_GROUPED = "export fanout/grouped"
EXPORT_PAIR_MIN_RATIO = 1.5


def m1_ns_per_op(directory):
    """micro name -> ns/op from BENCH_M1.json's M1a series."""
    artifact, error = load_artifact(directory / "BENCH_M1.json")
    if error:
        return None, f"BENCH_M1.json: {error}"
    values = {}
    for series in artifact.get("series", []):
        if series.get("name") != "M1a":
            continue
        for point in series.get("points", []):
            fields = point.get("fields", {})
            micro = fields.get("micro")
            ns = fields.get("ns/op")
            if isinstance(micro, str) and isinstance(ns, (int, float)):
                values[micro] = float(ns)
    if not values:
        return None, "BENCH_M1.json: no M1a micro timings"
    return values, None


def load_timing(directory, bench_id):
    """Elapsed seconds from a TIMING_<id>.json wall-clock sidecar."""
    path = directory / f"TIMING_{bench_id}.json"
    artifact, error = load_artifact(path)
    if error:
        return None, f"{path.name}: {error}"
    elapsed = artifact.get("elapsed_s")
    if not isinstance(elapsed, (int, float)) or elapsed <= 0:
        return None, f"{path.name}: missing or non-positive elapsed_s"
    return float(elapsed), None


def ratchet_update(directory, trajectory_dir):
    values, error = m1_ns_per_op(directory)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    anchor = values.get(RATCHET_ANCHOR)
    if anchor is None:
        print(f"error: anchor micro '{RATCHET_ANCHOR}' absent from "
              "BENCH_M1.json", file=sys.stderr)
        return 1
    trajectory_dir.mkdir(parents=True, exist_ok=True)
    m1_path = trajectory_dir / "m1.json"
    m1_path.write_text(
        json.dumps({"bench": "M1", "anchor": RATCHET_ANCHOR,
                    "anchor_ns_per_op": anchor, "ns_per_op": values},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    written = [m1_path.name]
    for bench_id in RATCHET_WALL_BENCHES:
        elapsed, error = load_timing(directory, bench_id)
        if error:
            print(f"error: {error} (run the bench with --timing "
                  f"TIMING_{bench_id}.json)", file=sys.stderr)
            return 1
        path = trajectory_dir / f"{bench_id.lower()}.json"
        path.write_text(
            json.dumps({"bench": bench_id, "anchor": RATCHET_ANCHOR,
                        "anchor_ns_per_op": anchor, "elapsed_s": elapsed},
                       indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        written.append(path.name)
    print(f"wrote {trajectory_dir}/{{{', '.join(written)}}}")
    return 0


def ratchet_check(directory, trajectory_dir, inject):
    problems = []
    values, error = m1_ns_per_op(directory)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    anchor_now = values.get(RATCHET_ANCHOR)
    if anchor_now is None:
        print(f"error: anchor micro '{RATCHET_ANCHOR}' absent from "
              "BENCH_M1.json", file=sys.stderr)
        return 1

    m1_trajectory, error = load_artifact(trajectory_dir / "m1.json")
    if error:
        print(f"error: {trajectory_dir}/m1.json: {error} "
              "(seed it with --ratchet-update)", file=sys.stderr)
        return 1
    anchor_archived = m1_trajectory.get("anchor_ns_per_op")
    if not isinstance(anchor_archived, (int, float)) or anchor_archived <= 0:
        print(f"error: {trajectory_dir}/m1.json: bad anchor_ns_per_op",
              file=sys.stderr)
        return 1
    speed = anchor_now / anchor_archived

    archived_micros = m1_trajectory.get("ns_per_op", {})
    checked = 0
    for name, archived in sorted(archived_micros.items()):
        current = values.get(name)
        if current is None:
            problems.append(
                f"m1: micro '{name}' vanished from BENCH_M1.json "
                "(refresh bench/trajectory/ with --ratchet-update if "
                "intentional)")
            continue
        # The anchor normalises itself: skip the tautology (it would only
        # re-test the inject factor).
        if name == RATCHET_ANCHOR:
            continue
        allowed = archived * speed * RATCHET_MICRO_TOLERANCE
        if current * inject > allowed:
            problems.append(
                f"m1: '{name}' regressed: {current * inject:.1f} ns/op vs "
                f"allowed {allowed:.1f} (archived {archived:.1f}, host speed "
                f"x{speed:.2f}, tolerance x{RATCHET_MICRO_TOLERANCE})")
        checked += 1
    for name in values:
        if name not in archived_micros:
            problems.append(
                f"m1: micro '{name}' has no trajectory entry (archive it "
                "with --ratchet-update)")

    # Incremental-vs-full-replay speedup gate (ISSUE 9's tentpole claim).
    full = values.get(FLAP_PAIR_FULL)
    incremental = values.get(FLAP_PAIR_INCREMENTAL)
    if full is None or incremental is None:
        missing = [n for n, v in ((FLAP_PAIR_FULL, full),
                                  (FLAP_PAIR_INCREMENTAL, incremental))
                   if v is None]
        problems.append(
            f"m1: flap-reconverge pair incomplete — missing "
            f"{', '.join(repr(n) for n in missing)}")
    elif incremental <= 0 or full / incremental < FLAP_PAIR_MIN_RATIO:
        ratio = full / incremental if incremental > 0 else float("nan")
        problems.append(
            f"m1: incremental re-convergence speedup collapsed: "
            f"full-replay/incremental = {ratio:.2f}x, required >= "
            f"{FLAP_PAIR_MIN_RATIO}x ({full:.0f} vs {incremental:.0f} ns/op)")

    # Export update-group speedup gate (ISSUE 10's tentpole claim).
    per_neighbor = values.get(EXPORT_PAIR_PER_NEIGHBOR)
    grouped = values.get(EXPORT_PAIR_GROUPED)
    if per_neighbor is None or grouped is None:
        missing = [n for n, v in ((EXPORT_PAIR_PER_NEIGHBOR, per_neighbor),
                                  (EXPORT_PAIR_GROUPED, grouped))
                   if v is None]
        problems.append(
            f"m1: export-fanout pair incomplete — missing "
            f"{', '.join(repr(n) for n in missing)}")
    elif grouped <= 0 or per_neighbor / grouped < EXPORT_PAIR_MIN_RATIO:
        ratio = per_neighbor / grouped if grouped > 0 else float("nan")
        problems.append(
            f"m1: export update-group speedup collapsed: "
            f"per-neighbor/grouped = {ratio:.2f}x, required >= "
            f"{EXPORT_PAIR_MIN_RATIO}x ({per_neighbor:.0f} vs "
            f"{grouped:.0f} ns/op)")

    walls = 0
    for bench_id in RATCHET_WALL_BENCHES:
        trajectory, error = load_artifact(
            trajectory_dir / f"{bench_id.lower()}.json")
        if error:
            problems.append(
                f"{bench_id}: {trajectory_dir}/{bench_id.lower()}.json: "
                f"{error} (seed it with --ratchet-update)")
            continue
        archived = trajectory.get("elapsed_s")
        elapsed, error = load_timing(directory, bench_id)
        if error:
            problems.append(f"{bench_id}: {error}")
            continue
        allowed = archived * speed * RATCHET_WALL_TOLERANCE
        if elapsed * inject > allowed:
            problems.append(
                f"{bench_id}: wall-clock regressed: {elapsed * inject:.2f}s "
                f"vs allowed {allowed:.2f}s (archived {archived:.2f}s, host "
                f"speed x{speed:.2f}, tolerance x{RATCHET_WALL_TOLERANCE})")
        walls += 1

    if problems:
        print("perf ratchet FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"perf ratchet OK: {checked} micros and {walls} wall-clocks within "
          f"tolerance (host speed x{speed:.2f} vs trajectory)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", type=pathlib.Path,
                        help="directory holding the BENCH_*.json artifacts")
    parser.add_argument("--schema", type=pathlib.Path,
                        default=pathlib.Path(__file__).with_name("bench_schema.json"))
    parser.add_argument("--update", action="store_true",
                        help="regenerate the schema baseline from --dir")
    parser.add_argument("--trajectory", type=pathlib.Path,
                        default=pathlib.Path(__file__).with_name("trajectory"),
                        help="directory holding the perf-ratchet trajectory")
    parser.add_argument("--ratchet", action="store_true",
                        help="gate BENCH_M1 ns/op and TIMING_* wall-clocks "
                             "against the archived trajectory")
    parser.add_argument("--ratchet-update", action="store_true",
                        help="archive the current run as the new trajectory")
    parser.add_argument("--inject", type=float, default=1.0,
                        help="multiply measured values (not the anchor) by "
                             "this factor; CI uses 2.0 to prove the ratchet "
                             "trips")
    args = parser.parse_args()

    if args.ratchet_update:
        return ratchet_update(args.dir, args.trajectory)
    if args.ratchet:
        return ratchet_check(args.dir, args.trajectory, args.inject)

    if args.update:
        schema = build_schema(args.dir)
        if not schema:
            print(f"error: no BENCH_*.json artifacts in {args.dir}", file=sys.stderr)
            return 1
        args.schema.write_text(json.dumps(schema, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.schema} ({len(schema)} benches)")
        return 0

    try:
        baseline = json.loads(args.schema.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: schema baseline {args.schema} not found "
              "(run with --update to create it)", file=sys.stderr)
        return 1

    problems = check(args.dir, baseline)
    if problems:
        print("bench artifact check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    total_series = sum(len(b["series"]) for b in baseline.values())
    print(f"bench artifacts OK: {len(baseline)} benches, {total_series} series "
          f"verified against {args.schema.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
