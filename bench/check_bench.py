#!/usr/bin/env python3
"""Guard the BENCH_*.json perf-trajectory artifacts against silent decay.

CI runs every sweep bench with --quick --jobs 2 and archives the JSON
ResultSets.  A bench that stops emitting a series, drops a metric field, or
writes an empty artifact would silently break the perf trajectory without
failing the build — this script fails the job instead, by comparing each
artifact against a committed schema baseline (bench/bench_schema.json).

Checks per bench id in the baseline:
  * BENCH_<id>.json exists, parses, and declares the bench id;
  * every baseline series is present with at least one point;
  * every point of a series carries at least the baseline's field set
    (the intersection of fields across that series' points at the time the
    baseline was committed — per-arm conditional fields stay allowed);
  * a series the baseline marks as replicated ("aggregate_fields", from
    SweepSpec::replications) still carries its "aggregates" error bars:
    every entry has n >= 1 and each baseline aggregate field keeps its
    mean/sd/min/max keys;
  * mode_parity: in every series whose name contains "parity" (the
    packet-vs-flow-aggregate validation sweeps, e1's E1d / e3's E3d),
    the two workload engines agree on the pinned metrics within 2%.

Usage:
  check_bench.py --dir build                 # verify against the baseline
  check_bench.py --dir build --update        # regenerate the baseline
"""

import argparse
import json
import pathlib
import sys


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), None
    except FileNotFoundError:
        return None, "missing"
    except json.JSONDecodeError as e:
        return None, f"unparseable JSON ({e})"


def series_fields(series):
    """The field names every point of the series carries (intersection)."""
    field_sets = [set(point.get("fields", {})) for point in series.get("points", [])]
    if not field_sets:
        return []
    common = set.intersection(*field_sets)
    # Keep first-appearance order from the first point for stable baselines.
    first = list(series["points"][0].get("fields", {}))
    return [name for name in first if name in common]


def series_aggregate_fields(series):
    """The error-barred metric names every aggregate entry carries."""
    field_sets = [set(entry.get("fields", {}))
                  for entry in series.get("aggregates", [])]
    if not field_sets:
        return []
    common = set.intersection(*field_sets)
    first = list(series["aggregates"][0].get("fields", {}))
    return [name for name in first if name in common]


def series_schema(series):
    schema = {"fields": series_fields(series)}
    aggregate_fields = series_aggregate_fields(series)
    if aggregate_fields:
        schema["aggregate_fields"] = aggregate_fields
    return schema


def build_schema(directory):
    schema = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        artifact, error = load_artifact(path)
        if error:
            print(f"error: {path.name}: {error}", file=sys.stderr)
            sys.exit(1)
        bench_id = artifact.get("bench") or path.stem.removeprefix("BENCH_")
        schema[bench_id] = {
            "series": {
                series["name"]: series_schema(series)
                for series in artifact.get("series", [])
            }
        }
    return schema


# --- mode_parity guard -------------------------------------------------------
#
# The flow-aggregate engine is only trustworthy if it reproduces packet-mode
# results where both engines can run (DESIGN.md "Flow-aggregate workloads").
# Every series whose name contains "parity" carries a workload-mode axis;
# points are paired by their series label minus the mode token and each pair
# must agree on:
#   * "drop rate"          — within 2% relative or 5e-4 absolute (the floor
#     covers Poisson count noise between the engines' independent arrival
#     streams at single-digit drop counts);
#   * "t_setup mean (ms)"  — within 2% relative;
#   * "t_setup p99 (ms)"   — within 2% relative, only for arms whose drop
#     rate exceeds 1e-3: miss/RTO-dominated tails are stable, while warm
#     p99s sit on histogram bucket edges where a single boundary session
#     flips the reported value.
# Pairs with fewer than 500 packet-mode sessions are skipped so reduced
# smoke runs cannot produce false alarms.
MODE_PARITY_RTOL = 0.02
MODE_PARITY_DROP_ATOL = 5e-4
MODE_PARITY_P99_MIN_DROP_RATE = 1e-3
MODE_PARITY_MIN_SESSIONS = 500
WORKLOAD_MODES = ("packet", "aggregate")


def parity_pair_key(series_label):
    """The point's coordinates with the workload-mode token removed."""
    tokens = [token.strip() for token in series_label.split("/")]
    return " / ".join(t for t in tokens if t not in WORKLOAD_MODES)


def check_mode_parity(artifact, file_name):
    problems = []
    for series in artifact.get("series", []):
        name = series.get("name", "")
        if "parity" not in name.lower():
            continue
        pairs = {}
        for point in series.get("points", []):
            mode = point.get("fields", {}).get("mode")
            if mode in WORKLOAD_MODES:
                key = parity_pair_key(point.get("series", ""))
                pairs.setdefault(key, {})[mode] = point
        if not pairs:
            problems.append(
                f"{file_name}: parity series '{name}' has no workload-mode "
                "points to pair"
            )
            continue
        for key, by_mode in sorted(pairs.items()):
            missing = [m for m in WORKLOAD_MODES if m not in by_mode]
            if missing:
                problems.append(
                    f"{file_name}: series '{name}' point '{key}' lost its "
                    f"{'/'.join(missing)}-mode twin"
                )
                continue
            packet = by_mode["packet"]["fields"]
            aggregate = by_mode["aggregate"]["fields"]
            if packet.get("sessions", 0) < MODE_PARITY_MIN_SESSIONS:
                continue

            def compare(metric, tolerance_floor=0.0):
                pv = packet.get(metric)
                av = aggregate.get(metric)
                if pv is None or av is None:
                    problems.append(
                        f"{file_name}: series '{name}' point '{key}' dropped "
                        f"parity metric '{metric}'"
                    )
                    return
                allowed = max(MODE_PARITY_RTOL * abs(pv), tolerance_floor)
                if abs(av - pv) > allowed:
                    problems.append(
                        f"{file_name}: series '{name}' point '{key}': "
                        f"'{metric}' diverges across engines "
                        f"(packet {pv:.6g}, aggregate {av:.6g}, "
                        f"allowed ±{allowed:.6g})"
                    )

            compare("drop rate", MODE_PARITY_DROP_ATOL)
            compare("t_setup mean (ms)")
            if min(packet.get("drop rate", 0.0),
                   aggregate.get("drop rate", 0.0)) >= \
                    MODE_PARITY_P99_MIN_DROP_RATE:
                compare("t_setup p99 (ms)")
    return problems


def check(directory, baseline):
    problems = []
    for bench_id, expected in sorted(baseline.items()):
        path = directory / f"BENCH_{bench_id}.json"
        artifact, error = load_artifact(path)
        if error:
            problems.append(f"{path.name}: {error}")
            continue
        declared = artifact.get("bench")
        if declared != bench_id:
            problems.append(
                f"{path.name}: declares bench id '{declared}', expected "
                f"'{bench_id}'"
            )
            continue
        series_by_name = {s.get("name"): s for s in artifact.get("series", [])}
        if not series_by_name:
            problems.append(f"{path.name}: no series (empty artifact)")
            continue
        problems.extend(check_mode_parity(artifact, path.name))
        # Series unknown to the baseline are as unguarded as unknown files:
        # force the baseline to grow with the bench.
        for name in series_by_name:
            if name not in expected["series"]:
                problems.append(
                    f"{path.name}: series '{name}' not in the schema baseline "
                    "(regenerate with --update)"
                )
        for name, spec in expected["series"].items():
            series = series_by_name.get(name)
            if series is None:
                problems.append(f"{path.name}: series '{name}' is missing")
                continue
            points = series.get("points", [])
            if not points:
                problems.append(f"{path.name}: series '{name}' has no points")
                continue
            required = set(spec["fields"])
            for point in points:
                missing = required - set(point.get("fields", {}))
                if missing:
                    problems.append(
                        f"{path.name}: series '{name}' point {point.get('index')} "
                        f"dropped fields: {', '.join(sorted(missing))}"
                    )
                    break
            required_aggregates = set(spec.get("aggregate_fields", []))
            if required_aggregates:
                aggregates = series.get("aggregates", [])
                if not aggregates:
                    problems.append(
                        f"{path.name}: series '{name}' lost its replication "
                        "aggregates (error bars)"
                    )
                for entry in aggregates:
                    if entry.get("n", 0) < 1:
                        problems.append(
                            f"{path.name}: series '{name}' aggregate group "
                            f"{entry.get('group')} has no replicas"
                        )
                        break
                    bad = [
                        agg_name
                        for agg_name in required_aggregates
                        if set(entry.get("fields", {}).get(agg_name, {}))
                        < {"mean", "sd", "min", "max"}
                    ]
                    if bad:
                        problems.append(
                            f"{path.name}: series '{name}' aggregate group "
                            f"{entry.get('group')} dropped error-bar fields: "
                            f"{', '.join(sorted(bad))}"
                        )
                        break
    # An artifact with no baseline entry is unguarded: a new bench's JSON
    # could be empty or corrupt without failing CI.  Force the baseline to
    # be regenerated alongside the bench.
    known = {f"BENCH_{bench_id}.json" for bench_id in baseline}
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name not in known:
            problems.append(
                f"{path.name}: not in the schema baseline (regenerate with "
                "--update)"
            )
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", type=pathlib.Path,
                        help="directory holding the BENCH_*.json artifacts")
    parser.add_argument("--schema", type=pathlib.Path,
                        default=pathlib.Path(__file__).with_name("bench_schema.json"))
    parser.add_argument("--update", action="store_true",
                        help="regenerate the schema baseline from --dir")
    args = parser.parse_args()

    if args.update:
        schema = build_schema(args.dir)
        if not schema:
            print(f"error: no BENCH_*.json artifacts in {args.dir}", file=sys.stderr)
            return 1
        args.schema.write_text(json.dumps(schema, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.schema} ({len(schema)} benches)")
        return 0

    try:
        baseline = json.loads(args.schema.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: schema baseline {args.schema} not found "
              "(run with --update to create it)", file=sys.stderr)
        return 1

    problems = check(args.dir, baseline)
    if problems:
        print("bench artifact check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    total_series = sum(len(b["series"]) for b in baseline.values())
    print(f"bench artifacts OK: {len(baseline)} benches, {total_series} series "
          f"verified against {args.schema.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
