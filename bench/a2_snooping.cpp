// A2 — ablation of DESIGN.md decision 1: DNS-path snooping (proactive
// mapping distribution during the DNS exchange) vs reactive pull with the
// same topology (PCE disabled, ALT overlay for on-demand resolution).
//
// The question this ablation answers: how much of the PCE architecture's
// benefit comes specifically from *snooping the DNS exchange* rather than
// from anything else in the deployment?
//
// Declarative sweep: the canonical steady-state base (A2's old hand-rolled
// config, verbatim) with a two-point control-plane axis.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

void series_snooping(bench::BenchContext& ctx) {
  if (!ctx.enabled("A2a")) return;
  auto spec = SweepSpec::steady_state().named("A2a").axis(Axis::control_planes(
      "arm", {ControlPlaneKind::kPce, ControlPlaneKind::kAltQueue},
      {"snoop (PCE)", "reactive pull (queue)"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("first-packet miss events", s.miss_events);
    record.set_int("drops", s.miss_drops);
    record.set_real("T_setup mean (ms)", s.t_setup_mean_ms);
    record.set_real("T_setup p95 (ms)", s.t_setup_p95_ms);
    record.set_real("T_setup p99 (ms)", s.t_setup_p99_ms);
    record.set_real(
        "ITR queueing delay p95 (ms)",
        experiment.internet().merged_queue_delay().p95() / 1000.0);
  });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("A2", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "A2", "ablation: proactive DNS snooping vs reactive pull",
      "DESIGN.md decision 1 (Steps 2-5: PCEs in the DNS data path)");
  lispcp::series_snooping(ctx);
  lispcp::bench::print_footer(
      "Shape check: snooping eliminates the resolution wait entirely (0 miss "
      "events); the reactive arm pays one mapping round trip on every cold "
      "flow, visible as the p95/p99 setup gap and nonzero ITR queueing.");
  ctx.finish();
  return 0;
}
