// A2 — ablation of DESIGN.md decision 1: DNS-path snooping (proactive
// mapping distribution during the DNS exchange) vs reactive pull with the
// same topology (PCE disabled, ALT overlay for on-demand resolution).
//
// The question this ablation answers: how much of the PCE architecture's
// benefit comes specifically from *snooping the DNS exchange* rather than
// from anything else in the deployment?
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;

ExperimentConfig arm(bool snoop) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(
      snoop ? ControlPlaneKind::kPce : ControlPlaneKind::kAltQueue);
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = 8;
  config.traffic.sessions_per_second = 30;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(30);
  return config;
}

}  // namespace
}  // namespace lispcp

int main() {
  using lispcp::metrics::Table;
  lispcp::bench::print_header(
      "A2", "ablation: proactive DNS snooping vs reactive pull",
      "DESIGN.md decision 1 (Steps 2-5: PCEs in the DNS data path)");

  lispcp::Experiment snoop_arm(lispcp::arm(true));
  const auto with_snoop = snoop_arm.run();
  lispcp::Experiment pull_arm(lispcp::arm(false));
  const auto without = pull_arm.run();

  Table table({"metric", "snoop (PCE)", "reactive pull (queue)"});
  table.add_row({"sessions", Table::integer(with_snoop.sessions),
                 Table::integer(without.sessions)});
  table.add_row({"first-packet miss events", Table::integer(with_snoop.miss_events),
                 Table::integer(without.miss_events)});
  table.add_row({"drops", Table::integer(with_snoop.miss_drops),
                 Table::integer(without.miss_drops)});
  table.add_row({"T_setup mean (ms)", Table::num(with_snoop.t_setup_mean_ms),
                 Table::num(without.t_setup_mean_ms)});
  table.add_row({"T_setup p95 (ms)", Table::num(with_snoop.t_setup_p95_ms),
                 Table::num(without.t_setup_p95_ms)});
  table.add_row({"T_setup p99 (ms)", Table::num(with_snoop.t_setup_p99_ms),
                 Table::num(without.t_setup_p99_ms)});

  const auto queue_delay = pull_arm.internet().merged_queue_delay();
  table.add_row({"ITR queueing delay p95 (ms)", "0.00",
                 Table::num(queue_delay.p95() / 1000.0)});
  table.print(std::cout);

  lispcp::bench::print_footer(
      "Shape check: snooping eliminates the resolution wait entirely (0 miss "
      "events); the reactive arm pays one mapping round trip on every cold "
      "flow, visible as the p95/p99 setup gap and nonzero ITR queueing.");
  return 0;
}
