// A3 — ablation of DESIGN.md decision 5: the ETR that receives the first
// data packet multicasts the learned reverse mapping to its peer ETRs and
// the PCE database (paper §2, last paragraph) — vs keeping it local.
//
// Without the multicast, a return packet leaving through a *different*
// border router than the one the forward traffic arrived at finds no
// mapping: the reverse path drops exactly the SYN-ACKs the handshake needs.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;

ExperimentConfig arm(bool multicast) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  config.spec.domains = 8;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.multicast_reverse = multicast;
  config.spec.seed = 9;
  config.traffic.sessions_per_second = 30;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(60);
  return config;
}

}  // namespace
}  // namespace lispcp

int main() {
  using lispcp::metrics::Table;
  lispcp::bench::print_header(
      "A3", "ablation: ETR reverse-mapping multicast on/off",
      "DESIGN.md decision 5; paper §2: \"pushes this mapping to the rest of "
      "the ETRs (and updates the PCED database) via multicast\"");

  lispcp::Experiment with_arm(lispcp::arm(true));
  const auto with_mc = with_arm.run();
  lispcp::Experiment without_arm(lispcp::arm(false));
  const auto without = without_arm.run();

  auto reverse_updates = [](lispcp::scenario::Experiment& e) {
    std::uint64_t total = 0;
    for (auto& dom : e.internet().domains()) {
      total += dom.pce->stats().reverse_updates;
    }
    return total;
  };

  Table table({"metric", "multicast on (paper)", "multicast off"});
  table.add_row({"sessions", Table::integer(with_mc.sessions),
                 Table::integer(without.sessions)});
  table.add_row({"reverse-path miss drops", Table::integer(with_mc.miss_drops),
                 Table::integer(without.miss_drops)});
  table.add_row({"SYN retransmissions", Table::integer(with_mc.syn_retransmissions),
                 Table::integer(without.syn_retransmissions)});
  table.add_row({"T_setup p99 (ms)", Table::num(with_mc.t_setup_p99_ms),
                 Table::num(without.t_setup_p99_ms)});
  table.add_row({"PCE DB reverse updates", Table::integer(reverse_updates(with_arm)),
                 Table::integer(reverse_updates(without_arm))});
  table.add_row({"established", Table::integer(with_mc.established),
                 Table::integer(without.established)});
  table.print(std::cout);

  lispcp::bench::print_footer(
      "Shape check: with the multicast, two-way mapping completes on the "
      "first data packet and no reverse-path drops occur; without it, "
      "SYN-ACKs leaving via the sibling border router drop and sessions pay "
      "3-second retransmission timeouts (p99 blows up).");
  return 0;
}
