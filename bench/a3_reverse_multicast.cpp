// A3 — ablation of DESIGN.md decision 5: the ETR that receives the first
// data packet multicasts the learned reverse mapping to its peer ETRs and
// the PCE database (paper §2, last paragraph) — vs keeping it local.
//
// Without the multicast, a return packet leaving through a *different*
// border router than the one the forward traffic arrived at finds no
// mapping: the reverse path drops exactly the SYN-ACKs the handshake needs.
//
// Declarative sweep: PCE base with a labelled multicast on/off axis.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

SweepSpec a3_base() {
  SweepSpec spec;
  spec.base([](ExperimentConfig& config) {
    mapping::MappingSystemFactory::instance().apply_preset(
        ControlPlaneKind::kPce, config.spec);
    config.spec.domains = 8;
    config.spec.hosts_per_domain = 2;
    config.spec.providers_per_domain = 2;
    config.spec.seed = 9;
    config.traffic.sessions_per_second = 30;
    config.traffic.duration = sim::SimDuration::seconds(30);
    config.drain = sim::SimDuration::seconds(60);
  });
  return spec;
}

void series_multicast(bench::BenchContext& ctx) {
  if (!ctx.enabled("A3a")) return;
  auto spec = a3_base().named("A3a").axis(Axis::labeled(
      "reverse multicast",
      {{"multicast on (paper)",
        [](ExperimentConfig& config) { config.spec.multicast_reverse = true; }},
       {"multicast off", [](ExperimentConfig& config) {
          config.spec.multicast_reverse = false;
        }}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    std::uint64_t reverse_updates = 0;
    for (auto& dom : experiment.internet().domains()) {
      reverse_updates += dom.pce->stats().reverse_updates;
    }
    record.set_int("sessions", s.sessions);
    record.set_int("reverse-path miss drops", s.miss_drops);
    record.set_int("SYN retransmissions", s.syn_retransmissions);
    record.set_real("T_setup p99 (ms)", s.t_setup_p99_ms);
    record.set_int("PCE DB reverse updates", reverse_updates);
    record.set_int("established", s.established);
  });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("A3", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "A3", "ablation: ETR reverse-mapping multicast on/off",
      "DESIGN.md decision 5; paper §2: \"pushes this mapping to the rest of "
      "the ETRs (and updates the PCED database) via multicast\"");
  lispcp::series_multicast(ctx);
  lispcp::bench::print_footer(
      "Shape check: with the multicast, two-way mapping completes on the "
      "first data packet and no reverse-path drops occur; without it, "
      "SYN-ACKs leaving via the sibling border router drop and sessions pay "
      "3-second retransmission timeouts (p99 blows up).");
  ctx.finish();
  return 0;
}
