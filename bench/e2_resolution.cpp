// E2 — claim (ii): the EID-to-RLOC mapping is obtained and configured
// approximately within the DNS resolution time: T_DNS + T_map_resol ≈ T_DNS.
//
// Series E2a: measured T_DNS vs effective mapping-resolution time per
//             control plane (for pull systems T_map is the Map-Request round
//             trip paid *after* DNS; for the PCE it is the slack absorbed
//             inside T_DNS).
// Series E2b: the ratio (T_DNS + T_map)/T_DNS as inter-domain OWD grows.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

/// E2 runs the canonical cold-resolution base (tiny cache/TTL so the T_map
/// term is visible) with the queue-at-ITR palliative for the pull systems —
/// a drop would hide T_map inside a retransmission timeout.
SweepSpec e2_base() {
  auto spec = SweepSpec::cold_resolution();
  spec.tweak([](ExperimentConfig& config) {
    config.spec.miss_policy = config.spec.kind == ControlPlaneKind::kPce
                                  ? lisp::MissPolicy::kDrop
                                  : lisp::MissPolicy::kQueue;
  });
  return spec;
}

/// Effective T_map: mean extra queueing a first packet experiences at the
/// ITR while the mapping resolves (zero when the mapping was pre-configured).
double effective_t_map_ms(topo::Internet& internet) {
  const auto queue_delay = internet.merged_queue_delay();
  return queue_delay.count() == 0 ? 0.0 : queue_delay.mean() / 1000.0;
}

/// Mean T_DNS is dominated by warm resolver-cache hits; the histogram max is
/// the cold iterative walk, the quantity the paper's bound speaks about.
double t_dns_cold_ms(topo::Internet& internet) {
  return internet.metrics().t_dns().max() / 1000.0;
}

void series_control_planes(bench::BenchContext& ctx) {
  if (!ctx.enabled("E2a")) return;
  std::cout << "-- E2a: T_DNS vs T_map per control plane "
               "(queue-at-ITR palliative so T_map is measurable; OWD=40ms) --\n\n";
  auto spec = e2_base()
                  .named("E2a")
                  .base([](ExperimentConfig& config) {
                    config.spec.core_link_delay = sim::SimDuration::millis(20);
                  })
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
                       ControlPlaneKind::kNerd, ControlPlaneKind::kMapServer,
                       ControlPlaneKind::kPce}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    const double t_dns_cold = t_dns_cold_ms(experiment.internet());
    const double t_map = effective_t_map_ms(experiment.internet());
    const auto queue = experiment.internet().merged_queue_delay();
    record.set_real("T_DNS mean (ms)", s.t_dns_mean_ms);
    record.set_real("T_DNS cold (ms)", t_dns_cold);
    record.set_real("T_map mean (ms)", t_map);
    record.set_real("T_map p95 (ms)", queue.p95() / 1000.0);
    record.set_real("(T_DNS+T_map)/T_DNS cold", (t_dns_cold + t_map) / t_dns_cold,
                    3);
    record.set_int("resolutions", s.miss_events);
  });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_owd_sweep(bench::BenchContext& ctx) {
  if (!ctx.enabled("E2b")) return;
  std::cout << "-- E2b: (T_DNS+T_map)/T_DNS vs inter-domain OWD --\n\n";
  auto spec = e2_base()
                  .named("E2b")
                  .axis(Axis::integers(
                      "OWD (ms)", {10, 20, 50, 100, 150},
                      [](ExperimentConfig& config, std::uint64_t owd_ms) {
                        config.spec.core_link_delay =
                            sim::SimDuration::millis(static_cast<std::int64_t>(
                                owd_ms / 2));
                      }))
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
                       ControlPlaneKind::kPce},
                      {"alt-queue", "cons", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint& point, Record& record) {
    const double t_dns_cold = t_dns_cold_ms(experiment.internet());
    const double t_map = effective_t_map_ms(experiment.internet());
    record.set_real("ratio", (t_dns_cold + t_map) / t_dns_cold, 3);
    if (point.config.spec.kind == ControlPlaneKind::kPce) {
      const auto& pce_node = *experiment.internet().domain(0).pce;
      record.set_real("slack mean (ms)", pce_node.push_slack().mean() / 1000.0);
      // The claim under test: every push completed within the DNS exchange
      // (worst-case slack bounded by the cold T_DNS walk).
      record.set_text("slack<=T_DNS",
                      pce_node.push_slack().count() > 0 &&
                              pce_node.push_slack().max() / 1000.0 <= t_dns_cold
                          ? "yes"
                          : "no");
    }
  });
  const auto& result = ctx.run(runner);
  result.pivot("OWD (ms)", "control plane",
               {"ratio", "slack mean (ms)", "slack<=T_DNS"})
      .print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E2", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E2", "mapping resolution time vs DNS resolution time",
      "claim (ii): \"the EID-to-RLOC mapping can be obtained and configured "
      "approximately within the DNS resolution time\" — (T_DNS + T_map) ~ "
      "T_DNS");
  lispcp::series_control_planes(ctx);
  lispcp::series_owd_sweep(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: the pull baselines pay an extra Map-Request "
      "round trip on top of T_DNS (ratio 1.5-2.2x; CONS worse than ALT "
      "because replies retrace the tree), while the PCE ratio is exactly "
      "1.0 at every OWD — its mapping work rides inside the DNS exchange, "
      "and its push slack grows with OWD yet always stays within T_DNS.");
  ctx.finish();
  return 0;
}
