// E2 — claim (ii): the EID-to-RLOC mapping is obtained and configured
// approximately within the DNS resolution time: T_DNS + T_map_resol ≈ T_DNS.
//
// Series 1: measured T_DNS vs effective mapping-resolution time per control
//           plane (for pull systems T_map is the Map-Request round trip paid
//           *after* DNS; for the PCE it is the slack absorbed inside T_DNS).
// Series 2: the ratio (T_DNS + T_map)/T_DNS as inter-domain OWD grows.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig base_config(ControlPlaneKind kind,
                             sim::SimDuration core_delay) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 12;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.core_link_delay = core_delay;
  // Cold-resolution study: tiny cache and TTL so nearly every session
  // resolves, making the T_map term visible.
  config.spec.cache_capacity = 2;
  config.spec.mapping_ttl_seconds = 5;
  config.spec.miss_policy = kind == ControlPlaneKind::kPce
                                ? lisp::MissPolicy::kDrop
                                : lisp::MissPolicy::kQueue;
  config.spec.seed = 2;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.7;
  config.drain = sim::SimDuration::seconds(30);
  return config;
}

/// Effective T_map: mean extra queueing a first packet experiences at the
/// ITR while the mapping resolves (zero when the mapping was pre-configured).
double effective_t_map_ms(topo::Internet& internet) {
  const auto queue_delay = internet.merged_queue_delay();
  return queue_delay.count() == 0 ? 0.0 : queue_delay.mean() / 1000.0;
}

void series_control_planes() {
  std::cout << "-- E2a: T_DNS vs T_map per control plane "
               "(queue-at-ITR palliative so T_map is measurable; OWD=40ms) --\n\n";
  metrics::Table table({"control plane", "T_DNS mean (ms)", "T_DNS cold (ms)",
                        "T_map mean (ms)", "T_map p95 (ms)",
                        "(T_DNS+T_map)/T_DNS cold", "resolutions"});
  const std::vector<ControlPlaneKind> kinds = {
      ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
      ControlPlaneKind::kNerd, ControlPlaneKind::kMapServer,
      ControlPlaneKind::kPce};
  for (auto kind : kinds) {
    Experiment experiment(base_config(kind, sim::SimDuration::millis(20)));
    const auto s = experiment.run();
    // Mean T_DNS is dominated by warm resolver-cache hits; the histogram
    // max is the cold iterative walk, the quantity the paper's bound speaks
    // about.
    const double t_dns_cold =
        experiment.internet().metrics().t_dns().max() / 1000.0;
    const double t_map = effective_t_map_ms(experiment.internet());
    const auto queue = experiment.internet().merged_queue_delay();
    table.add_row(
        {topo::to_string(kind), metrics::Table::num(s.t_dns_mean_ms),
         metrics::Table::num(t_dns_cold), metrics::Table::num(t_map),
         metrics::Table::num(queue.p95() / 1000.0),
         metrics::Table::num((t_dns_cold + t_map) / t_dns_cold, 3),
         metrics::Table::integer(s.miss_events)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_owd_sweep() {
  std::cout << "-- E2b: (T_DNS+T_map)/T_DNS vs inter-domain OWD --\n\n";
  metrics::Table table({"OWD (ms)", "alt-queue ratio", "cons ratio",
                        "pce ratio", "pce slack mean (ms)", "pce slack<=T_DNS"});
  auto ratio_of = [](Experiment& experiment) {
    const double t_map = effective_t_map_ms(experiment.internet());
    const double t_dns_cold =
        experiment.internet().metrics().t_dns().max() / 1000.0;
    return (t_dns_cold + t_map) / t_dns_cold;
  };
  for (int owd_half_ms : {5, 10, 25, 50, 75}) {
    const auto delay = sim::SimDuration::millis(owd_half_ms);
    Experiment alt(base_config(ControlPlaneKind::kAltQueue, delay));
    alt.run();
    Experiment cons(base_config(ControlPlaneKind::kCons, delay));
    cons.run();
    Experiment pce(base_config(ControlPlaneKind::kPce, delay));
    pce.run();
    const auto& pce_node = *pce.internet().domain(0).pce;
    table.add_row({metrics::Table::integer(2 * owd_half_ms),
                   metrics::Table::num(ratio_of(alt), 3),
                   metrics::Table::num(ratio_of(cons), 3),
                   metrics::Table::num(ratio_of(pce), 3),
                   metrics::Table::num(pce_node.push_slack().mean() / 1000.0),
                   pce_node.push_slack().count() > 0 ? "yes" : "no"});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "E2", "mapping resolution time vs DNS resolution time",
      "claim (ii): \"the EID-to-RLOC mapping can be obtained and configured "
      "approximately within the DNS resolution time\" — (T_DNS + T_map) ~ "
      "T_DNS");
  lispcp::series_control_planes();
  lispcp::series_owd_sweep();
  lispcp::bench::print_footer(
      "Shape check vs paper: the pull baselines pay an extra Map-Request "
      "round trip on top of T_DNS (ratio 1.5-2.2x; CONS worse than ALT "
      "because replies retrace the tree), while the PCE ratio is exactly "
      "1.0 at every OWD — its mapping work rides inside the DNS exchange, "
      "and its push slack grows with OWD yet always stays within T_DNS.");
  return 0;
}
