// M1 — microbenchmarks (google-benchmark): the per-packet costs the paper's
// "line rate" assumptions rest on — LISP encap/decap header work, map-cache
// and LPM lookups, DNS and control-message (de)serialization, event-queue
// throughput.
#include <benchmark/benchmark.h>

#include "dns/message.hpp"
#include "lisp/control.hpp"
#include "lisp/map_cache.hpp"
#include "net/packet.hpp"
#include "net/checksum.hpp"
#include "net/prefix_trie.hpp"
#include "pcep/messages.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace lispcp {
namespace {

net::Packet make_data_packet() {
  net::TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  return net::Packet::tcp(net::Ipv4Address(100, 64, 0, 10),
                          net::Ipv4Address(100, 64, 1, 10), tcp, 1000);
}

void BM_LispEncapsulate(benchmark::State& state) {
  const auto base = make_data_packet();
  for (auto _ : state) {
    net::Packet p = base;
    net::LispHeader shim;
    shim.nonce = 42;
    net::UdpHeader udp;
    udp.dst_port = net::ports::kLispData;
    net::Ipv4Header outer;
    outer.src = net::Ipv4Address(10, 0, 0, 1);
    outer.dst = net::Ipv4Address(10, 0, 1, 1);
    p.push_outer(shim);
    p.push_outer(udp);
    p.push_outer(outer);
    benchmark::DoNotOptimize(p.wire_size());
  }
}
BENCHMARK(BM_LispEncapsulate);

void BM_LispDecapsulate(benchmark::State& state) {
  auto encapsulated = make_data_packet();
  encapsulated.push_outer(net::LispHeader{});
  encapsulated.push_outer(net::UdpHeader{});
  encapsulated.push_outer(net::Ipv4Header{});
  for (auto _ : state) {
    net::Packet p = encapsulated;
    p.pop_outer();
    p.pop_outer();
    p.pop_outer();
    benchmark::DoNotOptimize(p.inner_ip().dst);
  }
}
BENCHMARK(BM_LispDecapsulate);

void BM_PacketSerializeFull(benchmark::State& state) {
  auto p = make_data_packet();
  p.push_outer(net::LispHeader{});
  net::UdpHeader udp;
  udp.dst_port = net::ports::kLispData;
  p.push_outer(udp);
  net::Ipv4Header outer;
  outer.src = net::Ipv4Address(10, 0, 0, 1);
  outer.dst = net::Ipv4Address(10, 0, 1, 1);
  p.push_outer(outer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.serialize());
  }
}
BENCHMARK(BM_PacketSerializeFull);

void BM_MapCacheLookupHit(benchmark::State& state) {
  const auto sites = static_cast<int>(state.range(0));
  lisp::MapCache cache;
  sim::Rng rng(1);
  for (int i = 0; i < sites; ++i) {
    lisp::MapEntry entry;
    entry.eid_prefix = net::Ipv4Prefix(
        net::Ipv4Address(100, static_cast<std::uint8_t>(64 + i / 256),
                         static_cast<std::uint8_t>(i % 256), 0),
        24);
    entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 100, true}};
    cache.insert(entry, sim::SimTime::zero());
  }
  const auto now = sim::SimTime::zero() + sim::SimDuration::seconds(1);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Address eid(100, 64 + ((i / 256) % 16),
                               static_cast<std::uint8_t>(i % 256), 10);
    benchmark::DoNotOptimize(cache.lookup(eid, now));
    ++i;
  }
}
BENCHMARK(BM_MapCacheLookupHit)->Arg(64)->Arg(1024)->Arg(4096);

void BM_PrefixTrieLookup(benchmark::State& state) {
  const auto prefixes = static_cast<int>(state.range(0));
  net::PrefixTrie<int> trie;
  sim::Rng rng(2);
  for (int i = 0; i < prefixes; ++i) {
    trie.insert(net::Ipv4Prefix(
                    net::Ipv4Address(static_cast<std::uint32_t>(rng.engine()())),
                    8 + static_cast<int>(rng.uniform_int(0, 16))),
                i);
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(net::Ipv4Address(probe)));
    probe += 2654435761u;
  }
}
BENCHMARK(BM_PrefixTrieLookup)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DnsMessageSerialize(benchmark::State& state) {
  auto m = dns::DnsMessage::answer(
      1, {dns::DomainName::from_string("h0.d5.example"), dns::RrType::kA},
      {dns::ResourceRecord::a(dns::DomainName::from_string("h0.d5.example"),
                              net::Ipv4Address(100, 64, 5, 10))},
      true);
  for (auto _ : state) {
    net::ByteWriter w(m->wire_size());
    m->serialize(w);
    benchmark::DoNotOptimize(w.view().data());
  }
}
BENCHMARK(BM_DnsMessageSerialize);

void BM_DnsMessageParse(benchmark::State& state) {
  auto m = dns::DnsMessage::answer(
      1, {dns::DomainName::from_string("h0.d5.example"), dns::RrType::kA},
      {dns::ResourceRecord::a(dns::DomainName::from_string("h0.d5.example"),
                              net::Ipv4Address(100, 64, 5, 10))},
      true);
  net::ByteWriter w;
  m->serialize(w);
  const auto bytes = w.take();
  for (auto _ : state) {
    net::ByteReader r(bytes);
    benchmark::DoNotOptimize(dns::DnsMessage::parse_wire(r));
  }
}
BENCHMARK(BM_DnsMessageParse);

void BM_MapReplySerializeParse(benchmark::State& state) {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
  entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 50, true},
                 lisp::Rloc{net::Ipv4Address(10, 0, 1, 2), 1, 50, true}};
  lisp::MapReply reply(7, entry);
  for (auto _ : state) {
    net::ByteWriter w(reply.wire_size());
    reply.serialize(w);
    auto bytes = w.take();
    net::ByteReader r(bytes);
    benchmark::DoNotOptimize(lisp::MapReply::parse_wire(r));
  }
}
BENCHMARK(BM_MapReplySerializeParse);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t t = 0;
  sim::Rng rng(3);
  for (auto _ : state) {
    // Keep ~1k events in flight, firing the earliest each iteration.
    queue.schedule(sim::SimTime::from_ns(t + static_cast<std::int64_t>(
                                                 rng.uniform_int(1, 1'000'000))),
                   [] {});
    if (queue.size() > 1000) {
      sim::EventQueue::Fired fired;
      queue.pop(fired);
      t = fired.time.ns();
    }
  }
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_ZipfSample(benchmark::State& state) {
  sim::ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  sim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0xA5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(20)->Arg(1500);

void BM_PcepRequestSerializeParse(benchmark::State& state) {
  const pcep::MapComputationRequest request(7, net::Ipv4Address(100, 64, 1, 10));
  for (auto _ : state) {
    net::ByteWriter w;
    request.serialize(w);
    net::ByteReader r(w.view());
    benchmark::DoNotOptimize(pcep::parse_message(r));
  }
}
BENCHMARK(BM_PcepRequestSerializeParse);

void BM_PcepReplySerializeParse(benchmark::State& state) {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix(net::Ipv4Address(100, 64, 1, 0), 24);
  for (int i = 0; i < 4; ++i) {
    entry.rlocs.push_back(
        lisp::Rloc{net::Ipv4Address(10, 0, 0, std::uint8_t(i + 1)), 1, 25, true});
  }
  const pcep::MapComputationReply reply(7, entry);
  for (auto _ : state) {
    net::ByteWriter w;
    reply.serialize(w);
    net::ByteReader r(w.view());
    benchmark::DoNotOptimize(pcep::parse_message(r));
  }
}
BENCHMARK(BM_PcepReplySerializeParse);

void BM_MapRegisterSerializeParse(benchmark::State& state) {
  std::vector<lisp::MapEntry> entries(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].eid_prefix =
        net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(
                            (100u << 24) | (i << 8))),
                        24);
    entries[i].rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 100, true}};
  }
  const lisp::MapRegister reg(1, 180, entries);
  for (auto _ : state) {
    net::ByteWriter w;
    reg.serialize(w);
    net::ByteReader r(w.view());
    benchmark::DoNotOptimize(lisp::MapRegister::parse_wire(r));
  }
}
BENCHMARK(BM_MapRegisterSerializeParse)->Arg(1)->Arg(16)->Arg(64);


}  // namespace
}  // namespace lispcp

BENCHMARK_MAIN();

