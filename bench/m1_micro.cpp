// M1 — microbenchmarks: the per-packet costs the paper's "line rate"
// assumptions rest on — LISP encap/decap header work, map-cache and LPM
// lookups, DNS and control-message (de)serialization, event-queue and
// shard-queue throughput.
//
// Ported onto the shared bench CLI (bench_util.hpp) like every other bench:
// each micro is a point on a labelled axis, timed by a self-calibrating
// wall-clock harness (no google-benchmark dependency), so M1 accepts
// --jobs/--json/--csv/--filter/--quick and emits BENCH_M1.json under the
// schema guard.  --quick shrinks the per-micro time budget; --filter
// narrows by micro name ("trie", "map-cache/4096").  Note that ns/op is a
// wall-clock measurement: unlike the simulation benches the *values* are
// host-dependent (the artifact schema, not the numbers, is what CI pins),
// and --jobs > 1 makes concurrently timed micros perturb each other — the
// default stays serial.
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/arena.hpp"
#include "core/flat_map.hpp"
#include "core/inline_function.hpp"
#include "dns/message.hpp"
#include "lisp/control.hpp"
#include "lisp/map_cache.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "pcep/messages.hpp"
#include "routing/as_graph.hpp"
#include "routing/dfz_study.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/shard_queue.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;

/// Keeps `value` observable so the loop body is not optimised away.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// One micro: setup() runs untimed and returns the iteration body.
struct Micro {
  std::string name;
  std::function<std::function<void(std::uint64_t)>()> setup;
};

net::Packet make_data_packet() {
  net::TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  return net::Packet::tcp(net::Ipv4Address(100, 64, 0, 10),
                          net::Ipv4Address(100, 64, 1, 10), tcp, 1000);
}

std::vector<Micro> registry() {
  std::vector<Micro> micros;

  micros.push_back({"lisp encapsulate", [] {
    const auto base = make_data_packet();
    return std::function<void(std::uint64_t)>([base](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::Packet p = base;
        net::LispHeader shim;
        shim.nonce = 42;
        net::UdpHeader udp;
        udp.dst_port = net::ports::kLispData;
        net::Ipv4Header outer;
        outer.src = net::Ipv4Address(10, 0, 0, 1);
        outer.dst = net::Ipv4Address(10, 0, 1, 1);
        p.push_outer(shim);
        p.push_outer(udp);
        p.push_outer(outer);
        keep(p.wire_size());
      }
    });
  }});

  micros.push_back({"lisp decapsulate", [] {
    auto encapsulated = make_data_packet();
    encapsulated.push_outer(net::LispHeader{});
    encapsulated.push_outer(net::UdpHeader{});
    encapsulated.push_outer(net::Ipv4Header{});
    return std::function<void(std::uint64_t)>(
        [encapsulated](std::uint64_t iters) {
          for (std::uint64_t i = 0; i < iters; ++i) {
            net::Packet p = encapsulated;
            p.pop_outer();
            p.pop_outer();
            p.pop_outer();
            keep(p.inner_ip().dst);
          }
        });
  }});

  micros.push_back({"packet serialize", [] {
    auto p = make_data_packet();
    p.push_outer(net::LispHeader{});
    net::UdpHeader udp;
    udp.dst_port = net::ports::kLispData;
    p.push_outer(udp);
    net::Ipv4Header outer;
    outer.src = net::Ipv4Address(10, 0, 0, 1);
    outer.dst = net::Ipv4Address(10, 0, 1, 1);
    p.push_outer(outer);
    return std::function<void(std::uint64_t)>([p](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) keep(p.serialize());
    });
  }});

  for (const int sites : {64, 1024, 4096}) {
    micros.push_back({"map-cache hit/" + std::to_string(sites), [sites] {
      auto cache = std::make_shared<lisp::MapCache>();
      for (int i = 0; i < sites; ++i) {
        lisp::MapEntry entry;
        entry.eid_prefix = net::Ipv4Prefix(
            net::Ipv4Address(100, static_cast<std::uint8_t>(64 + i / 256),
                             static_cast<std::uint8_t>(i % 256), 0),
            24);
        entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 100, true}};
        cache->insert(entry, sim::SimTime::zero());
      }
      const auto now = sim::SimTime::zero() + sim::SimDuration::seconds(1);
      return std::function<void(std::uint64_t)>(
          [cache, now](std::uint64_t iters) {
            for (std::uint64_t i = 0; i < iters; ++i) {
              const net::Ipv4Address eid(
                  100, static_cast<std::uint8_t>(64 + ((i / 256) % 16)),
                  static_cast<std::uint8_t>(i % 256), 10);
              keep(cache->lookup(eid, now));
            }
          });
    }});
  }

  for (const int prefixes : {256, 4096, 65536}) {
    micros.push_back({"prefix-trie lookup/" + std::to_string(prefixes),
                      [prefixes] {
      auto trie = std::make_shared<net::PrefixTrie<int>>();
      sim::Rng rng(2);
      for (int i = 0; i < prefixes; ++i) {
        trie->insert(
            net::Ipv4Prefix(
                net::Ipv4Address(static_cast<std::uint32_t>(rng.engine()())),
                8 + static_cast<int>(rng.uniform_int(0, 16))),
            i);
      }
      return std::function<void(std::uint64_t)>([trie](std::uint64_t iters) {
        std::uint32_t probe = 0;
        for (std::uint64_t i = 0; i < iters; ++i) {
          keep(trie->lookup(net::Ipv4Address(probe)));
          probe += 2654435761u;
        }
      });
    }});
  }

  micros.push_back({"dns serialize", [] {
    auto m = dns::DnsMessage::answer(
        1, {dns::DomainName::from_string("h0.d5.example"), dns::RrType::kA},
        {dns::ResourceRecord::a(dns::DomainName::from_string("h0.d5.example"),
                                net::Ipv4Address(100, 64, 5, 10))},
        true);
    return std::function<void(std::uint64_t)>([m](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::ByteWriter w(m->wire_size());
        m->serialize(w);
        keep(w.view().data());
      }
    });
  }});

  micros.push_back({"dns parse", [] {
    auto m = dns::DnsMessage::answer(
        1, {dns::DomainName::from_string("h0.d5.example"), dns::RrType::kA},
        {dns::ResourceRecord::a(dns::DomainName::from_string("h0.d5.example"),
                                net::Ipv4Address(100, 64, 5, 10))},
        true);
    net::ByteWriter w;
    m->serialize(w);
    const auto bytes = w.take();
    return std::function<void(std::uint64_t)>([bytes](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::ByteReader r(bytes);
        keep(dns::DnsMessage::parse_wire(r));
      }
    });
  }});

  micros.push_back({"map-reply roundtrip", [] {
    lisp::MapEntry entry;
    entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
    entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 50, true},
                   lisp::Rloc{net::Ipv4Address(10, 0, 1, 2), 1, 50, true}};
    auto reply = std::make_shared<lisp::MapReply>(7, entry);
    return std::function<void(std::uint64_t)>([reply](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::ByteWriter w(reply->wire_size());
        reply->serialize(w);
        auto bytes = w.take();
        net::ByteReader r(bytes);
        keep(lisp::MapReply::parse_wire(r));
      }
    });
  }});

  // -- PR-7 speed-program pairs: each optimisation next to the layout it
  // replaced, so the artifact carries the speedup ratio directly. ---------

  // Event-record allocation over the queue's live-window profile (~256 in
  // flight): one heap shared_ptr + std::function per event (the seed
  // layout) vs a slab pool slot with an inline-capture action (the arena
  // layout sim::EventQueue now uses).
  micros.push_back({"event alloc/make-shared", [] {
    struct HeapRecord {
      std::function<void()> action;
      bool cancelled = false;
      bool daemon = false;
    };
    return std::function<void(std::uint64_t)>([](std::uint64_t iters) {
      std::vector<std::shared_ptr<HeapRecord>> live(256);
      for (auto& record : live) {
        record = std::make_shared<HeapRecord>();
        record->action = [] {};
      }
      std::size_t head = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        auto record = std::make_shared<HeapRecord>();
        record->action = [] {};
        live[head] = std::move(record);  // frees the displaced record
        head = (head + 1) % live.size();
      }
      keep(live[head]);
    });
  }});

  micros.push_back({"event alloc/arena", [] {
    struct PoolRecord {
      core::InlineFunction<void(), 88> action;
      bool cancelled = false;
      bool daemon = false;
    };
    return std::function<void(std::uint64_t)>([](std::uint64_t iters) {
      core::Pool<PoolRecord> pool;
      std::vector<std::uint32_t> live(256);
      for (auto& slot : live) {
        slot = pool.allocate();
        pool[slot].action = [] {};
      }
      std::size_t head = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        pool.release(live[head]);
        const std::uint32_t index = pool.allocate();
        pool[index].action = [] {};
        live[head] = index;
        head = (head + 1) % live.size();
      }
      keep(pool.live());
    });
  }});

  // The RIB decision scan: per-prefix best-route lookups against a 16k-entry
  // table — node-based std::map (the seed BgpSpeaker layout) vs the
  // open-addressing core::FlatMap the RIBs use now.
  {
    constexpr int kRoutes = 16384;
    const auto route_prefix = [](int i) {
      return net::Ipv4Prefix(
          net::Ipv4Address(100, static_cast<std::uint8_t>(i / 256),
                           static_cast<std::uint8_t>(i % 256), 0),
          24);
    };
    micros.push_back({"rib scan/std-map", [route_prefix] {
      auto rib = std::make_shared<std::map<net::Ipv4Prefix, std::uint64_t>>();
      for (int i = 0; i < kRoutes; ++i) {
        rib->emplace(route_prefix(i), static_cast<std::uint64_t>(i));
      }
      return std::function<void(std::uint64_t)>(
          [rib, route_prefix](std::uint64_t iters) {
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < iters; ++i) {
              const auto it =
                  rib->find(route_prefix(static_cast<int>((i * 40503u) % kRoutes)));
              if (it != rib->end()) sum += it->second;
            }
            keep(sum);
          });
    }});

    micros.push_back({"rib scan/flat", [route_prefix] {
      auto rib =
          std::make_shared<core::FlatMap<net::Ipv4Prefix, std::uint64_t>>();
      for (int i = 0; i < kRoutes; ++i) {
        rib->insert_or_assign(route_prefix(i), static_cast<std::uint64_t>(i));
      }
      return std::function<void(std::uint64_t)>(
          [rib, route_prefix](std::uint64_t iters) {
            std::uint64_t sum = 0;
            for (std::uint64_t i = 0; i < iters; ++i) {
              const auto* value =
                  rib->find(route_prefix(static_cast<int>((i * 40503u) % kRoutes)));
              if (value != nullptr) sum += *value;
            }
            keep(sum);
          });
    }});
  }

  // The policy layer's toll on the import+decide hot path: one speaker with
  // two customer sessions flapping a prefix (announce/withdraw), so every
  // iteration runs import processing, the full decision comparator, and a
  // best-route transition — with the session policy table detached (the
  // legacy code path) vs the Gao-Rexford role maps attached (route-map
  // evaluation + local-pref/community actions per advert).
  for (const bool policy_on : {false, true}) {
    micros.push_back(
        {std::string("bgp import+decide/") + (policy_on ? "policy-on" : "policy-off"),
         [policy_on] {
      auto graph = std::make_shared<routing::AsGraph>();
      graph->add_as(routing::AsNumber(1), routing::AsTier::kTier1);
      graph->add_as(routing::AsNumber(2), routing::AsTier::kStub);
      graph->add_as(routing::AsNumber(3), routing::AsTier::kStub);
      graph->add_customer_provider(routing::AsNumber(2), routing::AsNumber(1));
      graph->add_customer_provider(routing::AsNumber(3), routing::AsNumber(1));
      routing::BgpConfig config;
      if (policy_on) {
        config.policy = routing::policy::PolicyTable::gao_rexford(*graph);
      }
      auto fabric = std::make_shared<routing::BgpFabric>(*graph, config);
      const net::Ipv4Prefix prefix(net::Ipv4Address(100, 0, 0, 0), 20);
      // The standing alternative: AS3's equal-length path, beaten by AS2's
      // on the final ASN tiebreak whenever AS2's route is present.
      routing::UpdateMessage alt;
      alt.announces = {fabric->make_advert(prefix, {routing::AsNumber(3)})};
      fabric->speaker(routing::AsNumber(1))
          .handle_update(routing::AsNumber(3), alt);
      return std::function<void(std::uint64_t)>(
          [graph, fabric, prefix](std::uint64_t iters) {
            routing::BgpSpeaker& speaker =
                fabric->speaker(routing::AsNumber(1));
            routing::UpdateMessage announce;
            announce.announces = {
                fabric->make_advert(prefix, {routing::AsNumber(2)})};
            routing::UpdateMessage withdraw;
            withdraw.withdraws = {prefix};
            for (std::uint64_t i = 0; i < iters; ++i) {
              speaker.handle_update(routing::AsNumber(2),
                                    (i & 1) == 0 ? announce : withdraw);
            }
            keep(speaker.stats().best_changes);
          });
    }});
  }

  // The export leg on a 64-customer hub: one flap at the hub makes it
  // recompute and fan out an UPDATE to every session.  The per-neighbor arm
  // (share_exports = false) runs the export computation once per session —
  // the pre-update-group model — while the grouped arm computes once per
  // equivalence class and fans out by reference.  check_bench.py gates the
  // ratio under --ratchet.
  for (const bool grouped : {false, true}) {
    micros.push_back(
        {std::string("export fanout/") + (grouped ? "grouped" : "per-neighbor"),
         [grouped] {
      auto graph = std::make_shared<routing::AsGraph>();
      graph->add_as(routing::AsNumber(1), routing::AsTier::kTransit);
      constexpr std::uint32_t kFanout = 64;
      for (std::uint32_t i = 0; i < kFanout; ++i) {
        const routing::AsNumber stub(10 + i);
        graph->add_as(stub, routing::AsTier::kStub);
        graph->add_customer_provider(stub, routing::AsNumber(1));
      }
      routing::BgpConfig config;
      config.share_exports = grouped;
      auto fabric = std::make_shared<routing::BgpFabric>(*graph, config);
      const net::Ipv4Prefix prefix(net::Ipv4Address(100, 0, 0, 0), 20);
      routing::UpdateMessage announce;
      announce.announces = {
          fabric->make_advert(prefix, {routing::AsNumber(10)})};
      routing::UpdateMessage withdraw;
      withdraw.withdraws = {prefix};
      return std::function<void(std::uint64_t)>(
          [graph, fabric, announce, withdraw](std::uint64_t iters) {
            routing::BgpSpeaker& hub = fabric->speaker(routing::AsNumber(1));
            for (std::uint64_t i = 0; i < iters; ++i) {
              hub.handle_update(routing::AsNumber(10),
                                (i & 1) == 0 ? announce : withdraw);
            }
            keep(hub.stats().routes_announced);
          });
    }});
  }

  // Distributing one attribute set to 16 holders (the adj-in/loc-rib/
  // in-flight-advert copies one UPDATE used to spawn): the copy arm pays a
  // vector deep-copy per holder — the pre-interning model — while the ref
  // arm interns the canonical node once (steady-state hit: one hash probe,
  // no allocation) and hands out refcounted handles.
  {
    constexpr std::size_t kHolders = 16;
    const std::vector<routing::AsNumber> path{
        routing::AsNumber(64500), routing::AsNumber(64501),
        routing::AsNumber(64502), routing::AsNumber(64503),
        routing::AsNumber(64504), routing::AsNumber(64505)};
    const std::vector<routing::policy::Community> communities{0x00FF0001u,
                                                             0x00FF0002u};
    micros.push_back({"attr intern/copy", [path, communities] {
      return std::function<void(std::uint64_t)>(
          [path, communities](std::uint64_t iters) {
            for (std::uint64_t i = 0; i < iters; ++i) {
              for (std::size_t h = 0; h < kHolders; ++h) {
                std::vector<routing::AsNumber> p(path);
                std::vector<routing::policy::Community> c(communities);
                keep(p.data());
                keep(c.data());
              }
            }
          });
    }});

    micros.push_back({"attr intern/ref", [path, communities] {
      auto table = std::make_shared<routing::AttrTable>();
      // Untimed: the first intern allocates the canonical node; the timed
      // loop measures the shared-hit path every later UPDATE takes.
      auto anchor = std::make_shared<routing::AttrRef>(
          table->intern(path, communities, 0));
      return std::function<void(std::uint64_t)>(
          [table, anchor, path, communities](std::uint64_t iters) {
            for (std::uint64_t i = 0; i < iters; ++i) {
              const routing::AttrRef ref = table->intern(path, communities, 0);
              for (std::size_t h = 0; h < kHolders; ++h) {
                const routing::AttrRef holder = ref;
                keep(holder.use_count());
              }
            }
          });
    }});
  }

  // Building the F2 synthetic Internet from scratch vs forking the shared
  // copy-on-write snapshot (what every same-shape sweep point after the
  // first now does inside Runner::run's scope).
  {
    routing::SyntheticInternetConfig config;
    config.stub_count = 200;
    micros.push_back({"internet build/full", [config] {
      return std::function<void(std::uint64_t)>([config](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          keep(routing::build_synthetic_internet(config).size());
        }
      });
    }});

    micros.push_back({"internet fork/cow", [config] {
      auto scope = std::make_shared<routing::SyntheticInternetScope>();
      const auto primed = routing::shared_synthetic_internet(config);
      return std::function<void(std::uint64_t)>(
          [scope, primed, config](std::uint64_t iters) {
            for (std::uint64_t i = 0; i < iters; ++i) {
              keep(routing::shared_synthetic_internet(config).get());
            }
          });
    }});
  }

  // One stub flap on the 1k-stub F2 Internet: the full-replay arm rebuilds
  // and re-converges the whole world around the flap (the pre-incremental
  // measurement model), the incremental arm applies two RouteDelta batches
  // to one long-lived converged fabric and replays only the dirty-prefix
  // cascade.  The ratio is the tentpole's speedup; check_bench.py gates it
  // at >= 5x under --ratchet.
  {
    routing::DfzStudyConfig study;
    study.internet.tier1_count = 4;
    study.internet.transit_count = 10;
    study.internet.providers_per_stub = 2;
    study.internet.stub_count = 1000;
    study.internet.seed = 7;

    micros.push_back({"flap reconverge/full-replay", [study] {
      return std::function<void(std::uint64_t)>([study](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          keep(routing::run_rehoming_churn(study).update_messages);
        }
      });
    }});

    micros.push_back({"flap reconverge/incremental", [study] {
      // Untimed: build and converge the world once.
      const auto graph = routing::shared_synthetic_internet(study.internet);
      routing::BgpConfig bgp = study.bgp;
      bgp.expected_prefixes = graph->size();
      auto fabric = std::make_shared<routing::BgpFabric>(*graph, bgp);
      std::vector<routing::RouteDelta> originations;
      const auto stubs = graph->ases_of_tier(routing::AsTier::kStub);
      for (routing::AsNumber asn : graph->ases()) {
        if (graph->tier(asn) == routing::AsTier::kStub) continue;
        originations.push_back(routing::RouteDelta::announce(
            asn, routing::provider_aggregate(asn)));
      }
      for (std::size_t i = 0; i < stubs.size(); ++i) {
        originations.push_back(routing::RouteDelta::announce(
            stubs[i], routing::stub_site_prefixes(i, 1).front()));
      }
      fabric->apply(originations);
      fabric->run_to_convergence();
      const routing::AsNumber mover = stubs.front();
      const net::Ipv4Prefix prefix = routing::stub_site_prefixes(0, 1).front();
      return std::function<void(std::uint64_t)>(
          [fabric, mover, prefix](std::uint64_t iters) {
            for (std::uint64_t i = 0; i < iters; ++i) {
              fabric->apply({routing::RouteDelta::withdraw(mover, prefix)});
              fabric->run_to_convergence();
              fabric->apply({routing::RouteDelta::announce(mover, prefix)});
              fabric->run_to_convergence();
              keep(fabric->last_run_events());
            }
          });
    }});
  }

  micros.push_back({"event-queue schedule+fire", [] {
    return std::function<void(std::uint64_t)>([](std::uint64_t iters) {
      sim::EventQueue queue;
      std::int64_t t = 0;
      sim::Rng rng(3);
      for (std::uint64_t i = 0; i < iters; ++i) {
        // Keep ~1k events in flight, firing the earliest each iteration.
        queue.schedule(
            sim::SimTime::from_ns(t + static_cast<std::int64_t>(
                                          rng.uniform_int(1, 1'000'000))),
            [] {});
        if (queue.size() > 1000) {
          sim::EventQueue::Fired fired;
          queue.pop(fired);
          t = fired.time.ns();
        }
      }
    });
  }});

  micros.push_back({"shard-queue schedule+fire", [] {
    return std::function<void(std::uint64_t)>([](std::uint64_t iters) {
      // The sharded engine's identity-keyed queue on the same in-flight
      // profile as the event-queue micro above.
      sim::ShardQueue queue;
      std::int64_t t = 0;
      sim::Rng rng(3);
      std::uint64_t fired_through = 0;
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto at = sim::SimTime::from_ns(
            t + static_cast<std::int64_t>(rng.uniform_int(1, 1'000'000)));
        queue.schedule(at, sim::EventKey{t, i}, [] {});
        if (queue.size() > 1000) {
          const auto end = queue.next_time() + sim::SimDuration::nanos(1);
          fired_through += queue.run_window(end);
          t = queue.now().ns();
        }
      }
      keep(fired_through);
    });
  }});

  for (const int n : {1024, 65536}) {
    micros.push_back({"zipf sample/" + std::to_string(n), [n] {
      auto zipf = std::make_shared<sim::ZipfDistribution>(
          static_cast<std::size_t>(n), 0.9);
      return std::function<void(std::uint64_t)>([zipf](std::uint64_t iters) {
        sim::Rng rng(4);
        for (std::uint64_t i = 0; i < iters; ++i) keep((*zipf)(rng));
      });
    }});
  }

  for (const int bytes : {20, 1500}) {
    micros.push_back({"checksum/" + std::to_string(bytes), [bytes] {
      auto data = std::make_shared<std::vector<std::byte>>(
          static_cast<std::size_t>(bytes), std::byte{0xA5});
      return std::function<void(std::uint64_t)>([data](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          keep(net::internet_checksum(*data));
        }
      });
    }});
  }

  micros.push_back({"pcep request roundtrip", [] {
    auto request = std::make_shared<pcep::MapComputationRequest>(
        7, net::Ipv4Address(100, 64, 1, 10));
    return std::function<void(std::uint64_t)>([request](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::ByteWriter w;
        request->serialize(w);
        net::ByteReader r(w.view());
        keep(pcep::parse_message(r));
      }
    });
  }});

  micros.push_back({"pcep reply roundtrip", [] {
    lisp::MapEntry entry;
    entry.eid_prefix = net::Ipv4Prefix(net::Ipv4Address(100, 64, 1, 0), 24);
    for (int i = 0; i < 4; ++i) {
      entry.rlocs.push_back(lisp::Rloc{
          net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)), 1, 25,
          true});
    }
    auto reply = std::make_shared<pcep::MapComputationReply>(7, entry);
    return std::function<void(std::uint64_t)>([reply](std::uint64_t iters) {
      for (std::uint64_t i = 0; i < iters; ++i) {
        net::ByteWriter w;
        reply->serialize(w);
        net::ByteReader r(w.view());
        keep(pcep::parse_message(r));
      }
    });
  }});

  for (const int entries : {1, 16, 64}) {
    micros.push_back({"map-register roundtrip/" + std::to_string(entries),
                      [entries] {
      std::vector<lisp::MapEntry> list(static_cast<std::size_t>(entries));
      for (std::size_t i = 0; i < list.size(); ++i) {
        list[i].eid_prefix = net::Ipv4Prefix(
            net::Ipv4Address(
                static_cast<std::uint32_t>((100u << 24) | (i << 8))),
            24);
        list[i].rlocs = {
            lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 100, true}};
      }
      auto reg = std::make_shared<lisp::MapRegister>(1, 180, list);
      return std::function<void(std::uint64_t)>([reg](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
          net::ByteWriter w;
          reg->serialize(w);
          net::ByteReader r(w.view());
          keep(lisp::MapRegister::parse_wire(r));
        }
      });
    }});
  }

  return micros;
}

/// Grows the iteration count geometrically until the body fills the time
/// budget, then reports the final timing.
void time_micro(const std::function<void(std::uint64_t)>& body,
                double budget_ns, Record& record) {
  using clock = std::chrono::steady_clock;
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    body(iters);
    const double elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    if (elapsed_ns >= budget_ns || iters >= (std::uint64_t{1} << 30)) {
      record.set_int("iters", iters);
      record.set_real("ns/op", elapsed_ns / static_cast<double>(iters), 1);
      return;
    }
    iters *= 4;
  }
}

void series_micro(bench::BenchContext& ctx) {
  // --filter can name (part of) a micro ("trie", "map-cache/4096"):
  // BenchContext only matches series and control-plane names, so narrow
  // the axis here ourselves.
  const std::string& filter = ctx.options().filter;
  bool micro_filter = false;
  if (!filter.empty()) {
    for (const Micro& micro : registry()) {
      if (micro.name.find(filter) != std::string::npos) {
        micro_filter = true;
        break;
      }
    }
  }
  if (!ctx.enabled("M1a") && !micro_filter) return;
  std::cout << "\n-- M1a: per-operation costs (wall clock) --\n";
  const double budget_ns = ctx.quick() ? 2e6 : 5e7;

  std::vector<std::pair<std::string, std::function<void(ExperimentConfig&)>>>
      points;
  for (const Micro& micro : registry()) {
    if (micro_filter && micro.name.find(filter) == std::string::npos) continue;
    points.emplace_back(micro.name, [](ExperimentConfig&) {});
  }
  SweepSpec spec;
  spec.named("M1a").axis(Axis::labeled("micro", std::move(points)));

  Runner runner(std::move(spec));
  runner.execute([budget_ns](const RunPoint& point, Record& record) {
    const std::string& name = point.coordinates.front().second.as_text();
    for (const Micro& micro : registry()) {
      if (micro.name != name) continue;
      time_micro(micro.setup(), budget_ns, record);
      return;
    }
  });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx =
      lispcp::bench::BenchContext("M1", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "M1", "microbenchmarks: per-packet and per-message costs",
      "the \"line rate\" assumptions: encap/decap, cache and LPM lookups, "
      "(de)serialization, event dispatch");
  lispcp::series_micro(ctx);
  lispcp::bench::print_footer(
      "ns/op is wall-clock and host-dependent; CI pins the artifact schema, "
      "not the values.  Run without --quick (and --jobs 1) for stable "
      "numbers.");
  ctx.finish();
  return 0;
}
