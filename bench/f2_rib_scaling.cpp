// F2 — the paper's §1 premise: DFZ routing-table scaling with and without
// the Locator/Identifier split.
//
// "The scaling benefits arise when EID addresses are not routable through
// the Internet — only the RLOCs are globally routable [2]."  This bench
// measures that on the BGP-lite substrate (src/routing): the same synthetic
// three-tier Internet is converged twice —
//
//   legacy-bgp      every stub site injects its (possibly de-aggregated)
//                   prefix into BGP;
//   lisp-rloc-only  only provider RLOC aggregates enter BGP; stub EID blocks
//                   become mapping-system entries.
//
// A second series measures re-homing churn: the BGP update storm when one
// multihomed stub flaps its prefixes (the ingress-TE move of §2), versus the
// LISP+PCE equivalent, a Step-7b mapping push that no BGP speaker hears.
//
// Declarative sweeps via the DFZ adapter (scenario/dfz_adapter.hpp): the
// studies build their own three-tier Internet, so they run through
// Runner::execute with stub-site count as a topology-size axis.  The BGP
// substrate is the sharded convergence engine: --shards K partitions each
// point's AS graph across K deterministic shards (records are
// byte-identical for any K — CI diffs --shards 4 against --shards 1), and
// the F2c series scales the study to 1k stub sites, the regime where the
// paper's table-size claim actually bites.  F2d replicates the churn study
// over derived seeds (SweepSpec::replications) for mean/sd error bars.
// F2f soaks a 1k-stub Internet under a generated ChurnPlan of 1000+ flaps
// spread over simulated days, re-converging incrementally on one long-lived
// fabric; F2g is a short flap plan that CI also runs under --full-replay
// (rebuild per event) and byte-diffs against the incremental artifact.
#include <iostream>

#include "bench_util.hpp"
#include "scenario/dfz_adapter.hpp"

namespace lispcp {
namespace {

using scenario::ExperimentConfig;
using scenario::Runner;
using scenario::SweepSpec;

SweepSpec f2_base(const bench::BenchContext& ctx) {
  const bool quick = ctx.quick();
  SweepSpec spec;
  spec.base([quick](ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 4;
        config.dfz.internet.transit_count = quick ? 6 : 10;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 7;
        // Keep the record's reported seed honest on the adapter path.
        config.spec.seed = config.dfz.internet.seed;
      })
      .base(scenario::dfz::sharded(ctx.shards(), ctx.shard_workers()));
  // --full-replay: churn plans rebuild the world per event (the parity
  // baseline the CI leg diffs against the incremental default).
  if (ctx.full_replay()) spec.base(scenario::dfz::full_replay());
  return spec;
}

void series_scaling(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2a")) return;
  std::cout << "\n-- F2a: DFZ table size and convergence cost --\n";
  const bool quick = ctx.quick();
  auto spec =
      f2_base(ctx)
          .named("F2a")
          .axis(scenario::dfz::stub_sites(
              quick ? std::vector<std::uint64_t>{20, 40}
                    : std::vector<std::uint64_t>{50, 100, 200}))
          .axis(scenario::dfz::deaggregation(
              quick ? std::vector<std::uint64_t>{1, 4}
                    : std::vector<std::uint64_t>{1, 4, 16}))
          .axis(scenario::dfz::scenarios());
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_study);
  ctx.run(runner).table().print(std::cout);
}

void series_churn(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2b")) return;
  std::cout << "\n-- F2b: re-homing churn — one stub swings its ingress "
               "(BGP flap vs PCE mapping push) --\n";
  const bool quick = ctx.quick();
  auto spec = f2_base(ctx)
                  .named("F2b")
                  .base([quick](ExperimentConfig& config) {
                    config.dfz.internet.stub_count = quick ? 40 : 100;
                  })
                  .axis(scenario::dfz::deaggregation(
                      quick ? std::vector<std::uint64_t>{1, 4}
                            : std::vector<std::uint64_t>{1, 4, 16}))
                  .axis(scenario::dfz::scenarios());
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_churn);
  ctx.run(runner).table().print(std::cout);
}

void series_scale_out(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2c")) return;
  std::cout << "\n-- F2c: the claim at production scale — up to 1k stub "
               "sites (sharded convergence engine) --\n";
  const bool quick = ctx.quick();
  auto spec = f2_base(ctx)
                  .named("F2c")
                  .axis(scenario::dfz::stub_sites(
                      quick ? std::vector<std::uint64_t>{60, 120}
                            : std::vector<std::uint64_t>{500, 1000}))
                  .axis(scenario::dfz::scenarios());
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_study);
  ctx.run(runner).table().print(std::cout);
}

void series_churn_error_bars(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2d")) return;
  std::cout << "\n-- F2d: churn spread over topology seeds "
               "(multi-seed replication, mean/sd/min/max) --\n";
  const bool quick = ctx.quick();
  auto spec = f2_base(ctx)
                  .named("F2d")
                  .base([quick](ExperimentConfig& config) {
                    config.dfz.scenario =
                        routing::AddressingScenario::kLegacyBgp;
                    config.dfz.internet.stub_count = quick ? 40 : 100;
                  })
                  .axis(scenario::dfz::deaggregation({1, 4}))
                  .seed_mode(scenario::SeedMode::kPerPoint)
                  .replications(quick ? 3 : 5);
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_churn);
  ctx.run(runner).aggregate().table().print(std::cout);
}

void series_hijack_containment(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2e")) return;
  std::cout << "\n-- F2e: policy incidents vs containment — hijack/leak "
               "blast radius against the filtered-transit fraction "
               "(Gao-Rexford roles + IRR-style origin filters) --\n";
  const bool quick = ctx.quick();
  auto spec =
      f2_base(ctx)
          .named("F2e")
          .base([quick](ExperimentConfig& config) {
            config.dfz.scenario = routing::AddressingScenario::kLegacyBgp;
            config.dfz.internet.stub_count = quick ? 40 : 100;
            config.dfz.deaggregation_factor = 1;
            config.dfz.policy.event.victim_stub = 0;  // actor = last stub
          })
          .base(scenario::dfz::roles_enabled())
          .axis(scenario::dfz::policy_events(
              {routing::PolicyEvent::Kind::kHijackMoreSpecific,
               routing::PolicyEvent::Kind::kHijackSameSpecific,
               routing::PolicyEvent::Kind::kRouteLeak}))
          .axis(scenario::dfz::filtered_transits({0.0, 0.5, 1.0}));
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_policy_event);
  ctx.run(runner).table().print(std::cout);
}

void series_churn_soak(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2f")) return;
  std::cout << "\n-- F2f: DFZ churn soak — 1k+ flaps over simulated days at "
               "1k stub sites, incremental re-convergence "
               "(per-flap cost, mean/sd over derived-seed plans) --\n";
  const bool quick = ctx.quick();
  auto spec = f2_base(ctx)
                  .named("F2f")
                  .base([](ExperimentConfig& config) {
                    config.dfz.internet.stub_count = 1000;
                    config.dfz.soak.mean_spacing = sim::SimDuration::seconds(120);
                    config.dfz.soak.hold = sim::SimDuration::seconds(30);
                  })
                  .axis(scenario::dfz::soak_flaps(
                      quick ? std::vector<std::uint64_t>{1000}
                            : std::vector<std::uint64_t>{1000, 2000}))
                  .axis(scenario::dfz::scenarios())
                  .seed_mode(scenario::SeedMode::kPerPoint)
                  .replications(quick ? 3 : 5);
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_soak);
  ctx.run(runner).aggregate().table().print(std::cout);
}

void series_churn_parity(bench::BenchContext& ctx) {
  if (!ctx.enabled("F2g")) return;
  std::cout << "\n-- F2g: incremental vs full-replay parity probe — a short "
               "flap plan whose records must be byte-identical under "
               "--full-replay (CI diffs the two artifacts) --\n";
  const bool quick = ctx.quick();
  auto spec = f2_base(ctx)
                  .named("F2g")
                  .base([quick](ExperimentConfig& config) {
                    config.dfz.scenario =
                        routing::AddressingScenario::kLegacyBgp;
                    config.dfz.internet.stub_count = quick ? 40 : 100;
                    config.dfz.soak.flaps = 30;
                    config.dfz.soak.mean_spacing = sim::SimDuration::seconds(60);
                    config.dfz.soak.hold = sim::SimDuration::seconds(15);
                  })
                  .axis(scenario::dfz::deaggregation({1, 4}));
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_soak);
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("F2", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "F2", "DFZ routing-table scaling under the Loc/ID split",
      "§1: \"scaling benefits arise when EID addresses are not routable "
      "through the Internet — only the RLOCs are globally routable\"");
  lispcp::series_scaling(ctx);
  lispcp::series_churn(ctx);
  lispcp::series_scale_out(ctx);
  lispcp::series_churn_error_bars(ctx);
  lispcp::series_hijack_containment(ctx);
  lispcp::series_churn_soak(ctx);
  lispcp::series_churn_parity(ctx);
  lispcp::bench::print_footer(
      "Shape check: the legacy DFZ grows with sites x de-aggregation while "
      "the LISP DFZ stays fixed at the provider-aggregate count; re-homing "
      "under legacy BGP touches most of the Internet and scales with the "
      "de-aggregation factor, whereas under LISP+PCE it is a mapping push "
      "with zero BGP messages (its latency is bench E4's subject).  The "
      "soak (F2f) amortises thousands of flaps on one long-lived fabric; "
      "--full-replay rebuilds the world per flap and must reproduce the "
      "same records (F2g is the CI parity probe).");
  ctx.finish();
  return 0;
}
