// F2 — the paper's §1 premise: DFZ routing-table scaling with and without
// the Locator/Identifier split.
//
// "The scaling benefits arise when EID addresses are not routable through
// the Internet — only the RLOCs are globally routable [2]."  This bench
// measures that on the BGP-lite substrate (src/routing): the same synthetic
// three-tier Internet is converged twice —
//
//   legacy-bgp      every stub site injects its (possibly de-aggregated)
//                   prefix into BGP;
//   lisp-rloc-only  only provider RLOC aggregates enter BGP; stub EID blocks
//                   become mapping-system entries.
//
// A second table measures re-homing churn: the BGP update storm when one
// multihomed stub flaps its prefixes (the ingress-TE move of §2), versus the
// LISP+PCE equivalent, a Step-7b mapping push that no BGP speaker hears.
#include <iostream>

#include "bench_util.hpp"
#include "routing/dfz_study.hpp"

namespace lispcp {
namespace {

using routing::AddressingScenario;
using routing::DfzStudyConfig;

DfzStudyConfig study_config(AddressingScenario scenario, std::size_t stubs,
                            std::size_t deagg) {
  DfzStudyConfig config;
  config.internet.tier1_count = 4;
  config.internet.transit_count = 10;
  config.internet.stub_count = stubs;
  config.internet.providers_per_stub = 2;
  config.internet.seed = 7;
  config.scenario = scenario;
  config.deaggregation_factor = deagg;
  return config;
}

void table_scaling() {
  metrics::Table table({"scenario", "stub sites", "deagg", "DFZ table",
                        "mean RIB", "max RIB", "updates", "route records",
                        "converge ms", "mapping entries"});
  for (const std::size_t stubs : {50u, 100u, 200u}) {
    for (const std::size_t deagg : {1u, 4u, 16u}) {
      for (const auto scenario : {AddressingScenario::kLegacyBgp,
                                  AddressingScenario::kLispRlocOnly}) {
        const auto result =
            routing::run_dfz_study(study_config(scenario, stubs, deagg));
        table.add_row({to_string(scenario), metrics::Table::integer(stubs),
                       metrics::Table::integer(deagg),
                       metrics::Table::integer(result.dfz_table_size),
                       metrics::Table::num(result.mean_rib_size, 1),
                       metrics::Table::integer(result.max_rib_size),
                       metrics::Table::integer(result.update_messages),
                       metrics::Table::integer(result.route_records),
                       metrics::Table::num(result.convergence_ms, 1),
                       metrics::Table::integer(result.mapping_system_entries)});
      }
    }
  }
  table.print(std::cout);
}

void table_churn() {
  metrics::Table table({"scenario", "deagg", "updates", "route records",
                        "ASes touched", "settle ms"});
  for (const std::size_t deagg : {1u, 4u, 16u}) {
    for (const auto scenario : {AddressingScenario::kLegacyBgp,
                                AddressingScenario::kLispRlocOnly}) {
      const auto churn =
          routing::run_rehoming_churn(study_config(scenario, 100, deagg));
      table.add_row({to_string(scenario), metrics::Table::integer(deagg),
                     metrics::Table::integer(churn.update_messages),
                     metrics::Table::integer(churn.route_records),
                     metrics::Table::integer(churn.ases_touched),
                     metrics::Table::num(churn.settle_ms, 1)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "F2", "DFZ routing-table scaling under the Loc/ID split",
      "§1: \"scaling benefits arise when EID addresses are not routable "
      "through the Internet — only the RLOCs are globally routable\"");
  std::cout << "\n-- DFZ table size and convergence cost --\n";
  lispcp::table_scaling();
  std::cout << "\n-- Re-homing churn: one stub swings its ingress "
               "(BGP flap vs PCE mapping push) --\n";
  lispcp::table_churn();
  lispcp::bench::print_footer(
      "Shape check: the legacy DFZ grows with sites x de-aggregation while "
      "the LISP DFZ stays fixed at the provider-aggregate count; re-homing "
      "under legacy BGP touches most of the Internet and scales with the "
      "de-aggregation factor, whereas under LISP+PCE it is a mapping push "
      "with zero BGP messages (its latency is bench E4's subject).");
  return 0;
}
