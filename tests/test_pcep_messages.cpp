// Tests for pcep/messages: wire round-trips for every message type, common
// header validation, and length-consistency enforcement.
#include <gtest/gtest.h>

#include "pcep/messages.hpp"

namespace lispcp::pcep {
namespace {

/// Serializes `m`, asserts wire_size agreement, parses it back.
std::shared_ptr<const Message> round_trip(const Message& m) {
  net::ByteWriter w;
  m.serialize(w);
  EXPECT_EQ(w.size(), m.wire_size());
  net::ByteReader r(w.view());
  auto parsed = parse_message(r);
  EXPECT_TRUE(r.empty()) << "parse must consume the whole message";
  EXPECT_EQ(parsed->type(), m.type());
  return parsed;
}

lisp::MapEntry sample_mapping() {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
  entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 60, true},
                 lisp::Rloc{net::Ipv4Address(11, 0, 0, 1), 2, 40, false}};
  entry.ttl_seconds = 300;
  entry.version = 12;
  return entry;
}

TEST(PcepMessages, OpenRoundTrip) {
  const Open original(30, 120, 7);
  auto parsed = std::dynamic_pointer_cast<const Open>(round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->keepalive_seconds(), 30);
  EXPECT_EQ(parsed->dead_seconds(), 120);
  EXPECT_EQ(parsed->session_id(), 7);
}

TEST(PcepMessages, KeepaliveRoundTripIsHeaderOnly) {
  const Keepalive original;
  EXPECT_EQ(original.wire_size(), kCommonHeaderSize);
  round_trip(original);
}

TEST(PcepMessages, RequestRoundTrip) {
  const MapComputationRequest original(0xDEADBEEF,
                                       net::Ipv4Address(100, 64, 1, 10));
  auto parsed = std::dynamic_pointer_cast<const MapComputationRequest>(
      round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->request_id(), 0xDEADBEEFu);
  EXPECT_EQ(parsed->eid(), net::Ipv4Address(100, 64, 1, 10));
}

TEST(PcepMessages, ReplyWithMappingRoundTrip) {
  const MapComputationReply original(99, sample_mapping());
  auto parsed = std::dynamic_pointer_cast<const MapComputationReply>(
      round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->request_id(), 99u);
  ASSERT_FALSE(parsed->no_path());
  EXPECT_EQ(parsed->mapping(), sample_mapping());
}

TEST(PcepMessages, NoPathReplyRoundTrip) {
  const MapComputationReply original(7);
  auto parsed = std::dynamic_pointer_cast<const MapComputationReply>(
      round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_TRUE(parsed->no_path());
  EXPECT_THROW(static_cast<void>(parsed->mapping()), std::logic_error);
}

TEST(PcepMessages, ErrorRoundTrip) {
  const Error original(Error::Kind::kUnknownRequest);
  auto parsed = std::dynamic_pointer_cast<const Error>(round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->kind(), Error::Kind::kUnknownRequest);
}

TEST(PcepMessages, CloseRoundTrip) {
  const Close original(Close::Reason::kDeadTimer);
  auto parsed = std::dynamic_pointer_cast<const Close>(round_trip(original));
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->reason(), Close::Reason::kDeadTimer);
}

TEST(PcepMessages, EveryTypeDescribes) {
  EXPECT_NE(Open(30, 120, 1).describe(), "");
  EXPECT_NE(Keepalive().describe(), "");
  EXPECT_NE(MapComputationRequest(1, net::Ipv4Address()).describe(), "");
  EXPECT_NE(MapComputationReply(1).describe(), "");
  EXPECT_NE(MapComputationReply(1, sample_mapping()).describe(), "");
  EXPECT_NE(Error(Error::Kind::kSessionFailure).describe(), "");
  EXPECT_NE(Close(Close::Reason::kNoExplanation).describe(), "");
}

TEST(PcepMessages, RejectsWrongVersion) {
  net::ByteWriter w;
  Keepalive().serialize(w);
  auto bytes = w.take();
  bytes[0] = std::byte{static_cast<std::uint8_t>(2 << 5)};  // version 2
  net::ByteReader r(bytes);
  EXPECT_THROW(parse_message(r), std::invalid_argument);
}

TEST(PcepMessages, RejectsUnknownType) {
  net::ByteWriter w;
  w.u8(kPcepVersion << 5);
  w.u8(200);  // no such message type
  w.u16(4);
  net::ByteReader r(w.view());
  EXPECT_THROW(parse_message(r), std::invalid_argument);
}

TEST(PcepMessages, RejectsLengthBeyondBuffer) {
  net::ByteWriter w;
  w.u8(kPcepVersion << 5);
  w.u8(static_cast<std::uint8_t>(MessageType::kKeepalive));
  w.u16(64);  // claims 60 body bytes that do not exist
  net::ByteReader r(w.view());
  EXPECT_THROW(parse_message(r), std::invalid_argument);
}

TEST(PcepMessages, RejectsLengthShorterThanHeader) {
  net::ByteWriter w;
  w.u8(kPcepVersion << 5);
  w.u8(static_cast<std::uint8_t>(MessageType::kKeepalive));
  w.u16(2);
  net::ByteReader r(w.view());
  EXPECT_THROW(parse_message(r), std::invalid_argument);
}

TEST(PcepMessages, RejectsBodyLengthMismatch) {
  // An Open whose header claims one body byte too many.
  net::ByteWriter w;
  w.u8(kPcepVersion << 5);
  w.u8(static_cast<std::uint8_t>(MessageType::kOpen));
  w.u16(kCommonHeaderSize + 4);  // Open body is 3 bytes
  w.u8(30);
  w.u8(120);
  w.u8(1);
  w.u8(0);  // stray byte inside the claimed length
  net::ByteReader r(w.view());
  EXPECT_THROW(parse_message(r), std::invalid_argument);
}

TEST(PcepMessages, TypeNamesAreStable) {
  EXPECT_EQ(to_string(MessageType::kOpen), "Open");
  EXPECT_EQ(to_string(MessageType::kKeepalive), "Keepalive");
  EXPECT_EQ(to_string(MessageType::kRequest), "PCReq");
  EXPECT_EQ(to_string(MessageType::kReply), "PCRep");
  EXPECT_EQ(to_string(MessageType::kError), "PCErr");
  EXPECT_EQ(to_string(MessageType::kClose), "Close");
}

}  // namespace
}  // namespace lispcp::pcep
