// Tests for routing/policy: prefix-lists, AS-path patterns, route-maps and
// their attachment points in BgpSpeaker; the Gao-Rexford role table and the
// valley-free invariant checker at K ∈ {1, 8}; the PolicyEvent studies
// (hijack containment, route leak, selective de-aggregation TE); and the
// parity pins the subsystem promises — roles-on records byte-identical to
// policy-off, and policy-event records byte-identical across shard counts.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "routing/as_graph.hpp"
#include "routing/bgp.hpp"
#include "routing/dfz_study.hpp"
#include "routing/policy.hpp"
#include "scenario/dfz_adapter.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::routing {
namespace {

// ---------------------------------------------------------------------------
// Prefix lists, communities, AS-path patterns
// ---------------------------------------------------------------------------

TEST(PrefixList, ExactMatchByDefault) {
  policy::PrefixList list("l");
  list.permit(net::Ipv4Prefix::from_string("100.0.0.0/20"));
  EXPECT_TRUE(list.matches(net::Ipv4Prefix::from_string("100.0.0.0/20")));
  EXPECT_FALSE(list.matches(net::Ipv4Prefix::from_string("100.0.0.0/22")));
  EXPECT_FALSE(list.matches(net::Ipv4Prefix::from_string("100.0.16.0/20")));
}

TEST(PrefixList, GeLeBoundsAndFirstMatchWins) {
  policy::PrefixList list("l");
  // Deny the /24s inside the block, permit everything else in it up to /28.
  list.deny(net::Ipv4Prefix::from_string("100.0.0.0/20"), 24, 24);
  list.permit(net::Ipv4Prefix::from_string("100.0.0.0/20"), 20, 28);
  EXPECT_TRUE(list.matches(net::Ipv4Prefix::from_string("100.0.0.0/20")));
  EXPECT_TRUE(list.matches(net::Ipv4Prefix::from_string("100.0.4.0/22")));
  EXPECT_FALSE(list.matches(net::Ipv4Prefix::from_string("100.0.1.0/24")));
  EXPECT_FALSE(list.matches(net::Ipv4Prefix::from_string("100.0.0.0/30")));
  // Implicit deny: outside the block entirely.
  EXPECT_FALSE(list.matches(net::Ipv4Prefix::from_string("99.0.0.0/24")));
}

TEST(Community, MakeToStringAndSortedInsert) {
  const auto c = policy::make_community(65535, 7);
  EXPECT_EQ(policy::to_string(c), "65535:7");
  std::vector<policy::Community> set;
  policy::add_community(set, policy::make_community(10, 2));
  policy::add_community(set, policy::make_community(10, 1));
  policy::add_community(set, policy::make_community(10, 2));  // duplicate
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], policy::make_community(10, 1));
  EXPECT_EQ(set[1], policy::make_community(10, 2));
}

TEST(AsPathPattern, Kinds) {
  const std::vector<AsNumber> path{AsNumber{4}, AsNumber{2}, AsNumber{9}};
  const std::vector<AsNumber> empty;
  EXPECT_TRUE(policy::AsPathPattern::parse("").matches(path));
  EXPECT_TRUE(policy::AsPathPattern::parse("^$").matches(empty));
  EXPECT_FALSE(policy::AsPathPattern::parse("^$").matches(path));
  EXPECT_TRUE(policy::AsPathPattern::parse("^4").matches(path));
  EXPECT_FALSE(policy::AsPathPattern::parse("^2").matches(path));
  EXPECT_TRUE(policy::AsPathPattern::parse("9$").matches(path));
  EXPECT_FALSE(policy::AsPathPattern::parse("2$").matches(path));
  EXPECT_TRUE(policy::AsPathPattern::parse("2").matches(path));
  EXPECT_FALSE(policy::AsPathPattern::parse("5").matches(path));
  EXPECT_TRUE(policy::AsPathPattern::parse("^4$").matches({AsNumber{4}}));
  EXPECT_FALSE(policy::AsPathPattern::parse("^4$").matches(path));
  EXPECT_THROW(policy::AsPathPattern::parse("4 5"), std::invalid_argument);
  EXPECT_THROW(policy::AsPathPattern::parse("^"), std::invalid_argument);
}

TEST(RouteMap, FirstMatchImplicitDenyAndActions) {
  const auto prefix = net::Ipv4Prefix::from_string("100.0.0.0/20");
  const std::vector<AsNumber> path{AsNumber{2}};
  const std::vector<policy::Community> none;

  policy::RouteMap map("m");
  policy::PrefixList block("b");
  block.permit(prefix, 20, 32);
  map.add(policy::RouteMap::Action::kDeny).match_prefix_length(24, 32);
  map.add(policy::RouteMap::Action::kPermit)
      .match_prefix_list(block)
      .set_local_pref(300)
      .add_community(policy::make_community(1, 1))
      .prepend(2);

  const auto hit = map.evaluate(policy::RouteContext{prefix, path, none});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->local_pref, 300u);
  ASSERT_EQ(hit->add_communities.size(), 1u);
  EXPECT_EQ(hit->prepend, 2u);

  // The deny clause matches first for long prefixes inside the block.
  const auto long_prefix = net::Ipv4Prefix::from_string("100.0.1.0/24");
  EXPECT_FALSE(
      map.evaluate(policy::RouteContext{long_prefix, path, none}).has_value());
  // Implicit deny: nothing matches outside the block.
  const auto other = net::Ipv4Prefix::from_string("99.0.0.0/20");
  EXPECT_FALSE(
      map.evaluate(policy::RouteContext{other, path, none}).has_value());
}

TEST(RouteMap, CommunityAndAsPathConditionsAnd) {
  const auto prefix = net::Ipv4Prefix::from_string("100.0.0.0/20");
  const std::vector<AsNumber> path{AsNumber{2}, AsNumber{5}};
  std::vector<policy::Community> tags;
  policy::add_community(tags, policy::kLearnedFromCustomer);

  policy::RouteMap map("m");
  map.add(policy::RouteMap::Action::kPermit)
      .match_community(policy::kLearnedFromCustomer)
      .match_as_path(policy::AsPathPattern::parse("5$"));

  EXPECT_TRUE(map.evaluate(policy::RouteContext{prefix, path, tags}).has_value());
  const std::vector<policy::Community> other_tag{policy::kLearnedFromPeer};
  EXPECT_FALSE(
      map.evaluate(policy::RouteContext{prefix, path, other_tag}).has_value());
  const std::vector<AsNumber> other_path{AsNumber{2}};
  EXPECT_FALSE(
      map.evaluate(policy::RouteContext{prefix, other_path, tags}).has_value());
}

// ---------------------------------------------------------------------------
// Attachment in BgpSpeaker: import local-pref, export deny, prepend
// ---------------------------------------------------------------------------

/// One provider (AS1) with two stub customers (AS2, AS3) that both
/// originate the same prefix; AS2 wins the default tiebreak (lowest ASN).
struct Fork {
  explicit Fork(std::shared_ptr<policy::PolicyTable> table = nullptr) {
    graph.add_as(AsNumber{1}, AsTier::kTransit);
    graph.add_as(AsNumber{2}, AsTier::kStub);
    graph.add_as(AsNumber{3}, AsTier::kStub);
    graph.add_customer_provider(AsNumber{2}, AsNumber{1});
    graph.add_customer_provider(AsNumber{3}, AsNumber{1});
    BgpConfig config;
    config.policy = std::move(table);
    fabric = std::make_unique<BgpFabric>(graph, config);
  }
  AsGraph graph;
  std::unique_ptr<BgpFabric> fabric;
};

const net::Ipv4Prefix kForkPrefix = net::Ipv4Prefix::from_string("100.0.0.0/20");

TEST(BgpPolicy, ImportLocalPrefOverridesTiebreak) {
  auto table = std::make_shared<policy::PolicyTable>();
  auto& map = table->add_map("prefer-as3");
  map.add(policy::RouteMap::Action::kPermit).set_local_pref(300);
  table->session(AsNumber{1}, AsNumber{3}).import = &map;

  Fork fork(table);
  fork.fabric->apply({RouteDelta::announce(AsNumber{2}, kForkPrefix),
                      RouteDelta::announce(AsNumber{3}, kForkPrefix)});
  fork.fabric->run_to_convergence();

  const auto* best = fork.fabric->speaker(AsNumber{1}).best(kForkPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, AsNumber{3});
  EXPECT_EQ(best->local_pref, 300u);
}

TEST(BgpPolicy, ImportDenyFiltersRoute) {
  auto table = std::make_shared<policy::PolicyTable>();
  auto& map = table->add_map("deny-all");
  map.add(policy::RouteMap::Action::kDeny);
  table->session(AsNumber{1}, AsNumber{2}).import = &map;
  table->session(AsNumber{1}, AsNumber{3}).import = &map;

  Fork fork(table);
  fork.fabric->apply({RouteDelta::announce(AsNumber{2}, kForkPrefix)});
  fork.fabric->run_to_convergence();

  EXPECT_EQ(fork.fabric->speaker(AsNumber{1}).best(kForkPrefix), nullptr);
  EXPECT_GT(fork.fabric->speaker(AsNumber{1}).stats().imports_filtered, 0u);
}

TEST(BgpPolicy, ExportDenyAndPrepend) {
  auto table = std::make_shared<policy::PolicyTable>();
  auto& deny = table->add_map("deny-out");
  deny.add(policy::RouteMap::Action::kDeny);
  table->session(AsNumber{2}, AsNumber{1}).export_map = &deny;
  auto& pad = table->add_map("prepend-out");
  pad.add(policy::RouteMap::Action::kPermit).prepend(2);
  table->session(AsNumber{3}, AsNumber{1}).export_map = &pad;

  Fork fork(table);
  fork.fabric->apply({RouteDelta::announce(AsNumber{2}, kForkPrefix),
                      RouteDelta::announce(AsNumber{3}, kForkPrefix)});
  fork.fabric->run_to_convergence();

  // AS2's export is denied, so AS1 sees only AS3's padded path.
  const auto* best = fork.fabric->speaker(AsNumber{1}).best(kForkPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, AsNumber{3});
  ASSERT_EQ(best->as_path().size(), 3u);  // 3, 3, 3 (origin + two prepends)
  EXPECT_EQ(best->as_path()[0], AsNumber{3});
  EXPECT_EQ(best->as_path()[2], AsNumber{3});
  EXPECT_GT(fork.fabric->speaker(AsNumber{2}).stats().exports_filtered, 0u);
}

// ---------------------------------------------------------------------------
// Gao-Rexford roles and the valley-free checker
// ---------------------------------------------------------------------------

/// A converged synthetic Internet with the role table attached, originating
/// the same address plan as the DFZ study (provider aggregates + one block
/// per stub).
struct RolesInternet {
  explicit RolesInternet(std::size_t shards) {
    SyntheticInternetConfig internet;
    internet.tier1_count = 3;
    internet.transit_count = 4;
    internet.stub_count = 16;
    internet.providers_per_stub = 2;
    internet.seed = 7;
    graph = build_synthetic_internet(internet);
    table = policy::PolicyTable::gao_rexford(graph);
    BgpConfig config;
    config.shards = shards;
    config.shard_workers = 1;
    config.policy = table;
    fabric = std::make_unique<BgpFabric>(graph, config);
    std::vector<RouteDelta> originations;
    for (AsTier tier : {AsTier::kTier1, AsTier::kTransit}) {
      for (AsNumber asn : graph.ases_of_tier(tier)) {
        originations.push_back(
            RouteDelta::announce(asn, provider_aggregate(asn)));
      }
    }
    const auto stubs = graph.ases_of_tier(AsTier::kStub);
    for (std::size_t i = 0; i < stubs.size(); ++i) {
      originations.push_back(
          RouteDelta::announce(stubs[i], stub_site_prefixes(i, 1).front()));
    }
    fabric->apply(originations);
    fabric->run_to_convergence();
  }
  AsGraph graph;
  std::shared_ptr<policy::PolicyTable> table;
  std::unique_ptr<BgpFabric> fabric;
};

TEST(ValleyFree, ConvergedRolesFabricHasNoValleys) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    RolesInternet internet(shards);
    const auto check = policy::check_valley_free(*internet.fabric);
    EXPECT_GT(check.paths_checked, 0u) << "shards=" << shards;
    EXPECT_EQ(check.violations, 0u) << "shards=" << shards;
  }
}

TEST(ValleyFree, RouteLeakTurnsTheCheckerRed) {
  RolesInternet internet(1);
  const auto stubs = internet.graph.ases_of_tier(AsTier::kStub);
  const AsNumber leaker = stubs.back();
  AsNumber target{};
  for (const auto& neighbor : internet.graph.neighbors(leaker)) {
    if (neighbor.kind == NeighborKind::kProvider) target = neighbor.asn;
  }
  ASSERT_NE(target.value(), 0u);
  internet.table->session(leaker, target).valley_free = false;
  internet.fabric->apply({RouteDelta::refresh(leaker, target)});
  internet.fabric->run_to_convergence();
  const auto check = policy::check_valley_free(*internet.fabric);
  EXPECT_GT(check.violations, 0u);
}

TEST(ValleyFree, PathCheckerAutomaton) {
  AsGraph graph;
  for (std::uint32_t i = 1; i <= 4; ++i) graph.add_as(AsNumber{i}, AsTier::kTransit);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});  // 2 buys from 1
  graph.add_customer_provider(AsNumber{3}, AsNumber{1});  // 3 buys from 1
  graph.add_peering(AsNumber{2}, AsNumber{3});
  // Valley-free: origin 2 -> up to 1 -> down to 3 (at 3, path {1, 2}).
  EXPECT_TRUE(policy::valley_free_path(graph, AsNumber{3},
                                       {AsNumber{1}, AsNumber{2}}));
  // Peer step is fine once: origin 2 -> across to 3 (at 3, path {2}).
  EXPECT_TRUE(policy::valley_free_path(graph, AsNumber{3}, {AsNumber{2}}));
  // Valley: origin 1 -> down to 2 -> up to... 2->3 is a peering, and after
  // going down a peer step is a valley (at 3, path {2, 1}).
  EXPECT_FALSE(policy::valley_free_path(graph, AsNumber{3},
                                        {AsNumber{2}, AsNumber{1}}));
  // Unknown session (1 and 4 share no edge) counts as a violation.
  EXPECT_FALSE(policy::valley_free_path(graph, AsNumber{4}, {AsNumber{1}}));
}

// ---------------------------------------------------------------------------
// Policy events: hijack containment, leak, de-aggregation TE
// ---------------------------------------------------------------------------

DfzStudyConfig event_config(PolicyEvent::Kind kind, double filtered = 0.0) {
  DfzStudyConfig config;
  config.internet.tier1_count = 3;
  config.internet.transit_count = 4;
  config.internet.stub_count = 24;
  config.internet.providers_per_stub = 2;
  config.internet.seed = 7;
  config.policy.roles = true;
  config.policy.filtered_transit_fraction = filtered;
  config.policy.event.kind = kind;
  config.policy.event.victim_stub = 0;  // actor defaults to the last stub
  return config;
}

TEST(PolicyEvent, RequiresRolesLegacyAndAKind) {
  auto config = event_config(PolicyEvent::Kind::kHijackMoreSpecific);
  config.policy.roles = false;
  EXPECT_THROW((void)run_policy_event(config), std::invalid_argument);
  config = event_config(PolicyEvent::Kind::kHijackMoreSpecific);
  config.scenario = AddressingScenario::kLispRlocOnly;
  EXPECT_THROW((void)run_policy_event(config), std::invalid_argument);
  config = event_config(PolicyEvent::Kind::kNone);
  EXPECT_THROW((void)run_policy_event(config), std::invalid_argument);
}

TEST(PolicyEvent, MoreSpecificHijackPropagatesStrictlyFurther) {
  const auto more =
      run_policy_event(event_config(PolicyEvent::Kind::kHijackMoreSpecific));
  const auto same =
      run_policy_event(event_config(PolicyEvent::Kind::kHijackSameSpecific));
  // The paper-facing contrast: longest-prefix match hands the more-specific
  // hijacker every AS its announcement reaches, while the same-specific
  // forgery stays distance-limited by the decision process.
  EXPECT_GT(more.ases_preferring_actor, same.ases_preferring_actor);
  EXPECT_GT(more.rib_delta, 0u);
  EXPECT_GT(more.event_announcements, 0u);
}

TEST(PolicyEvent, OriginFiltersContainTheHijack) {
  const auto open =
      run_policy_event(event_config(PolicyEvent::Kind::kHijackMoreSpecific, 0.0));
  const auto filtered =
      run_policy_event(event_config(PolicyEvent::Kind::kHijackMoreSpecific, 1.0));
  EXPECT_LT(filtered.ases_preferring_actor, open.ases_preferring_actor);
  // Every transit applies strict customer-origin filters: the forged
  // more-specifics die at the actor's own provider sessions.
  EXPECT_EQ(filtered.ases_preferring_actor, 1u);  // only the actor itself
}

TEST(PolicyEvent, RouteLeakDetoursTraffic) {
  const auto leak = run_policy_event(event_config(PolicyEvent::Kind::kRouteLeak));
  EXPECT_GT(leak.event_announcements, 0u);
  EXPECT_GT(leak.ases_preferring_actor, 0u);
  EXPECT_GT(leak.ases_touched, 0u);
}

TEST(PolicyEvent, SelectiveDeaggSteersWithLessChurnThanBroadcast) {
  const auto selective =
      run_policy_event(event_config(PolicyEvent::Kind::kSelectiveDeagg));
  const auto broadcast =
      run_policy_event(event_config(PolicyEvent::Kind::kBroadcastDeagg));
  // Steering: under selective announcement (export maps withhold the
  // more-specifics from all but the chosen provider) nearly every AS routes
  // the pieces through that provider; broadcast splits the ingress.
  EXPECT_GT(selective.actor_preference_fraction,
            broadcast.actor_preference_fraction);
  // And it costs less: fewer export legs carry the pieces.
  EXPECT_LE(selective.route_records, broadcast.route_records);
  EXPECT_GT(selective.event_announcements, 0u);
  EXPECT_GT(broadcast.rib_delta, 0u);
}

// ---------------------------------------------------------------------------
// Parity pins: roles-on == policy-off records; K-invariance of F2e
// ---------------------------------------------------------------------------

std::string json_bytes(const scenario::ResultSet& results) {
  std::ostringstream os;
  results.to_json(os);
  return os.str();
}

scenario::ResultSet run_study_mini(bool roles) {
  scenario::SweepSpec spec;
  spec.named("F2-roles-parity")
      .base([](scenario::ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 3;
        config.dfz.internet.transit_count = 4;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 7;
        config.spec.seed = config.dfz.internet.seed;
      })
      .axis(scenario::dfz::scenarios())
      .axis(scenario::dfz::stub_sites({16, 32}))
      .axis(scenario::dfz::deaggregation({1, 4}));
  if (roles) spec.base(scenario::dfz::roles_enabled());
  scenario::Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_study);
  return runner.run();
}

TEST(PolicyParity, GaoRexfordRolesReproducePolicyOffRecords) {
  // The role table's local-prefs (customer 200 / peer 100 / provider 50)
  // encode exactly the legacy preference order, so attaching it must not
  // change one byte of the study records — the policy-off byte-parity
  // contract, pinned in-process where a failure bisects.
  const auto off = run_study_mini(false);
  const auto on = run_study_mini(true);
  ASSERT_FALSE(off.records().empty());
  EXPECT_EQ(json_bytes(off), json_bytes(on));
}

scenario::ResultSet run_events_mini(std::size_t shards) {
  scenario::SweepSpec spec;
  spec.named("F2e-mini")
      .base([](scenario::ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 3;
        config.dfz.internet.transit_count = 4;
        config.dfz.internet.stub_count = 24;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 7;
        config.spec.seed = config.dfz.internet.seed;
        config.dfz.policy.event.victim_stub = 0;
      })
      .base(scenario::dfz::sharded(shards, 1))
      .base(scenario::dfz::roles_enabled())
      .axis(scenario::dfz::policy_events(
          {PolicyEvent::Kind::kHijackMoreSpecific, PolicyEvent::Kind::kRouteLeak,
           PolicyEvent::Kind::kSelectiveDeagg}))
      .axis(scenario::dfz::filtered_transits({0.0, 1.0}));
  scenario::Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_policy_event);
  return runner.run();
}

TEST(PolicyParity, EventRecordsIdenticalAcrossShardCounts) {
  const auto one = run_events_mini(1);
  const auto two = run_events_mini(2);
  const auto eight = run_events_mini(8);
  ASSERT_FALSE(one.records().empty());
  const std::string want = json_bytes(one);
  EXPECT_EQ(want, json_bytes(two));
  EXPECT_EQ(want, json_bytes(eight));
}

}  // namespace
}  // namespace lispcp::routing
