// Cross-control-plane property sweeps (TEST_P): conservation invariants,
// determinism, and claim-level orderings that must hold for every control
// plane and every seed.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::ExperimentSummary;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig sweep_config(ControlPlaneKind kind, std::uint64_t seed) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 5;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.seed = seed;
  config.traffic.sessions_per_second = 15;
  config.traffic.duration = sim::SimDuration::seconds(8);
  config.drain = sim::SimDuration::seconds(60);
  return config;
}

using SweepParam = std::tuple<ControlPlaneKind, std::uint64_t>;

class ControlPlaneProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ControlPlaneProperty, SessionConservation) {
  const auto [kind, seed] = GetParam();
  Experiment experiment(sweep_config(kind, seed));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 30u);
  // Every session ends in exactly one terminal state.
  EXPECT_EQ(summary.sessions,
            summary.established + summary.dns_failures + summary.connect_failures);
  // Established sessions complete their data exchange within the drain.
  EXPECT_EQ(summary.completed, summary.established);
}

TEST_P(ControlPlaneProperty, EncapDecapConservation) {
  const auto [kind, seed] = GetParam();
  Experiment experiment(sweep_config(kind, seed));
  experiment.run();
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t misdelivered = 0;
  for (auto& dom : experiment.internet().domains()) {
    for (auto* xtr : dom.xtrs) {
      encapsulated += xtr->stats().encapsulated;
      decapsulated += xtr->stats().decapsulated;
      misdelivered += xtr->stats().not_local_after_decap;
    }
  }
  // Lossless fabric in these runs: every encapsulated packet is
  // decapsulated exactly once (overlay-forwarded data also decapsulates).
  EXPECT_LE(decapsulated, encapsulated + 1'000'000);  // sanity bound
  if (kind != ControlPlaneKind::kPlainIp) {
    EXPECT_GT(encapsulated, 0u);
    EXPECT_EQ(misdelivered, 0u);
  } else {
    EXPECT_EQ(encapsulated, 0u);
  }
}

TEST_P(ControlPlaneProperty, NoUnexpectedDeliveries) {
  const auto [kind, seed] = GetParam();
  Experiment experiment(sweep_config(kind, seed));
  experiment.run();
  auto& net = experiment.internet().network();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& node = net.node(sim::NodeId(static_cast<std::uint32_t>(i)));
    EXPECT_EQ(node.unexpected_deliveries(), 0u) << node.name();
  }
}

TEST_P(ControlPlaneProperty, DeterministicUnderSameSeed) {
  const auto [kind, seed] = GetParam();
  const auto a = Experiment(sweep_config(kind, seed)).run();
  const auto b = Experiment(sweep_config(kind, seed)).run();
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.miss_drops, b.miss_drops);
  EXPECT_EQ(a.syn_retransmissions, b.syn_retransmissions);
  EXPECT_DOUBLE_EQ(a.t_setup_mean_ms, b.t_setup_mean_ms);
  EXPECT_DOUBLE_EQ(a.t_dns_mean_ms, b.t_dns_mean_ms);
}

TEST_P(ControlPlaneProperty, DnsUnaffectedByControlPlane) {
  // The headline architectural property: no control plane changes the DNS.
  // T_DNS distributions must be near-identical across all control planes
  // (same topology latencies, same workload).
  const auto [kind, seed] = GetParam();
  const auto this_cp = Experiment(sweep_config(kind, seed)).run();
  const auto baseline =
      Experiment(sweep_config(ControlPlaneKind::kPlainIp, seed)).run();
  EXPECT_NEAR(this_cp.t_dns_mean_ms, baseline.t_dns_mean_ms,
              baseline.t_dns_mean_ms * 0.02 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllControlPlanes, ControlPlaneProperty,
    ::testing::Combine(::testing::Values(ControlPlaneKind::kPlainIp,
                                         ControlPlaneKind::kAltDrop,
                                         ControlPlaneKind::kAltQueue,
                                         ControlPlaneKind::kAltForward,
                                         ControlPlaneKind::kCons,
                                         ControlPlaneKind::kNerd,
                                         ControlPlaneKind::kMapServer,
                                         ControlPlaneKind::kPce),
                       ::testing::Values(1u, 1234u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = topo::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

/// Claim-level ordering: the PCE control plane must dominate the pull
/// baselines on first-packet outcomes at any seed.
class ClaimOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClaimOrdering, PceBeatsPullBaselinesOnDropsAndTail) {
  const auto seed = GetParam();
  const auto pce = Experiment(sweep_config(ControlPlaneKind::kPce, seed)).run();
  const auto alt = Experiment(sweep_config(ControlPlaneKind::kAltDrop, seed)).run();
  EXPECT_EQ(pce.miss_drops, 0u);
  EXPECT_EQ(pce.syn_retransmissions, 0u);
  EXPECT_GT(alt.miss_drops, 0u);
  // The 3s-RTO tail shows only in the pull baseline.
  EXPECT_GT(alt.t_setup_p99_ms, pce.t_setup_p99_ms * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClaimOrdering, ::testing::Values(3u, 77u, 2024u));

}  // namespace
}  // namespace lispcp
