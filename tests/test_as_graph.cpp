// Tests for routing/as_graph: construction invariants, relationship
// perspectives, and the synthetic three-tier Internet builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/as_graph.hpp"

namespace lispcp::routing {
namespace {

TEST(AsGraph, AddAndQuery) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kTransit);
  graph.add_as(AsNumber{3}, AsTier::kStub);
  EXPECT_EQ(graph.size(), 3u);
  EXPECT_TRUE(graph.contains(AsNumber{2}));
  EXPECT_FALSE(graph.contains(AsNumber{9}));
  EXPECT_EQ(graph.tier(AsNumber{1}), AsTier::kTier1);
  EXPECT_EQ(graph.tier(AsNumber{3}), AsTier::kStub);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(AsGraph, DuplicateAsThrows) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kStub);
  EXPECT_THROW(graph.add_as(AsNumber{1}, AsTier::kTransit),
               std::invalid_argument);
}

TEST(AsGraph, UnknownAsThrows) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kStub);
  EXPECT_THROW(graph.tier(AsNumber{2}), std::out_of_range);
  EXPECT_THROW(graph.neighbors(AsNumber{2}), std::out_of_range);
  EXPECT_THROW(graph.add_customer_provider(AsNumber{1}, AsNumber{2}),
               std::out_of_range);
}

TEST(AsGraph, SelfAndDuplicateEdgesThrow) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  EXPECT_THROW(graph.add_peering(AsNumber{1}, AsNumber{1}),
               std::invalid_argument);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  EXPECT_THROW(graph.add_customer_provider(AsNumber{2}, AsNumber{1}),
               std::invalid_argument);
  EXPECT_THROW(graph.add_peering(AsNumber{1}, AsNumber{2}),
               std::invalid_argument);
}

TEST(AsGraph, RelationshipPerspectives) {
  AsGraph graph;
  graph.add_as(AsNumber{10}, AsTier::kTransit);
  graph.add_as(AsNumber{20}, AsTier::kStub);
  graph.add_as(AsNumber{30}, AsTier::kTransit);
  graph.add_customer_provider(/*customer=*/AsNumber{20}, /*provider=*/AsNumber{10});
  graph.add_peering(AsNumber{10}, AsNumber{30});

  const auto& from_stub = graph.neighbors(AsNumber{20});
  ASSERT_EQ(from_stub.size(), 1u);
  EXPECT_EQ(from_stub[0].asn, AsNumber{10});
  EXPECT_EQ(from_stub[0].kind, NeighborKind::kProvider);

  const auto& from_provider = graph.neighbors(AsNumber{10});
  ASSERT_EQ(from_provider.size(), 2u);
  EXPECT_EQ(from_provider[0].asn, AsNumber{20});
  EXPECT_EQ(from_provider[0].kind, NeighborKind::kCustomer);
  EXPECT_EQ(from_provider[1].asn, AsNumber{30});
  EXPECT_EQ(from_provider[1].kind, NeighborKind::kPeer);
}

TEST(AsGraph, TierListingPreservesInsertionOrder) {
  AsGraph graph;
  graph.add_as(AsNumber{5}, AsTier::kStub);
  graph.add_as(AsNumber{3}, AsTier::kStub);
  graph.add_as(AsNumber{4}, AsTier::kTier1);
  const auto stubs = graph.ases_of_tier(AsTier::kStub);
  ASSERT_EQ(stubs.size(), 2u);
  EXPECT_EQ(stubs[0], AsNumber{5});
  EXPECT_EQ(stubs[1], AsNumber{3});
}

TEST(SyntheticInternet, TierCountsAndNumbering) {
  SyntheticInternetConfig config;
  config.tier1_count = 3;
  config.transit_count = 5;
  config.stub_count = 20;
  const AsGraph graph = build_synthetic_internet(config);
  EXPECT_EQ(graph.size(), 28u);
  EXPECT_EQ(graph.ases_of_tier(AsTier::kTier1).size(), 3u);
  EXPECT_EQ(graph.ases_of_tier(AsTier::kTransit).size(), 5u);
  EXPECT_EQ(graph.ases_of_tier(AsTier::kStub).size(), 20u);
  // Contiguous numbering by tier: 1..3 tier-1, 4..8 transit, 9..28 stub.
  EXPECT_EQ(graph.tier(AsNumber{1}), AsTier::kTier1);
  EXPECT_EQ(graph.tier(AsNumber{4}), AsTier::kTransit);
  EXPECT_EQ(graph.tier(AsNumber{9}), AsTier::kStub);
  EXPECT_EQ(graph.tier(AsNumber{28}), AsTier::kStub);
}

TEST(SyntheticInternet, Tier1FullMesh) {
  SyntheticInternetConfig config;
  config.tier1_count = 4;
  config.transit_count = 0;
  config.stub_count = 0;
  const AsGraph graph = build_synthetic_internet(config);
  for (AsNumber a : graph.ases_of_tier(AsTier::kTier1)) {
    const auto& neighbors = graph.neighbors(a);
    EXPECT_EQ(neighbors.size(), 3u) << a.to_string();
    for (const auto& n : neighbors) EXPECT_EQ(n.kind, NeighborKind::kPeer);
  }
}

TEST(SyntheticInternet, EveryNonTier1HasRequestedProviders) {
  SyntheticInternetConfig config;
  config.tier1_count = 4;
  config.transit_count = 8;
  config.stub_count = 50;
  config.providers_per_transit = 2;
  config.providers_per_stub = 3;
  const AsGraph graph = build_synthetic_internet(config);
  for (AsNumber t : graph.ases_of_tier(AsTier::kTransit)) {
    std::size_t providers = 0;
    for (const auto& n : graph.neighbors(t)) {
      if (n.kind == NeighborKind::kProvider) {
        ++providers;
        EXPECT_EQ(graph.tier(n.asn), AsTier::kTier1);
      }
    }
    EXPECT_EQ(providers, 2u) << t.to_string();
  }
  for (AsNumber s : graph.ases_of_tier(AsTier::kStub)) {
    std::size_t providers = 0;
    for (const auto& n : graph.neighbors(s)) {
      EXPECT_NE(n.kind, NeighborKind::kCustomer) << "stubs sell no transit";
      if (n.kind == NeighborKind::kProvider) {
        ++providers;
        EXPECT_EQ(graph.tier(n.asn), AsTier::kTransit);
      }
    }
    EXPECT_EQ(providers, 3u) << s.to_string();
  }
}

TEST(SyntheticInternet, ProvidersAreDistinct) {
  SyntheticInternetConfig config;
  config.stub_count = 200;
  config.providers_per_stub = 2;
  const AsGraph graph = build_synthetic_internet(config);
  for (AsNumber s : graph.ases_of_tier(AsTier::kStub)) {
    std::set<std::uint32_t> seen;
    for (const auto& n : graph.neighbors(s)) {
      EXPECT_TRUE(seen.insert(n.asn.value()).second)
          << s.to_string() << " has duplicate provider " << n.asn.to_string();
    }
  }
}

TEST(SyntheticInternet, DeterministicForSameSeed) {
  SyntheticInternetConfig config;
  config.stub_count = 30;
  config.seed = 42;
  const AsGraph a = build_synthetic_internet(config);
  const AsGraph b = build_synthetic_internet(config);
  ASSERT_EQ(a.size(), b.size());
  for (AsNumber asn : a.ases()) {
    const auto& na = a.neighbors(asn);
    const auto& nb = b.neighbors(asn);
    ASSERT_EQ(na.size(), nb.size()) << asn.to_string();
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].asn, nb[i].asn);
      EXPECT_EQ(na[i].kind, nb[i].kind);
    }
  }
}

TEST(SyntheticInternet, InvalidConfigThrows) {
  SyntheticInternetConfig config;
  config.tier1_count = 0;
  EXPECT_THROW(build_synthetic_internet(config), std::invalid_argument);
  config = {};
  config.providers_per_stub = 0;
  EXPECT_THROW(build_synthetic_internet(config), std::invalid_argument);
}

TEST(SyntheticInternet, MoreProvidersThanPoolIsClamped) {
  SyntheticInternetConfig config;
  config.tier1_count = 2;
  config.transit_count = 1;
  config.stub_count = 3;
  config.providers_per_stub = 5;  // only one transit exists
  const AsGraph graph = build_synthetic_internet(config);
  for (AsNumber s : graph.ases_of_tier(AsTier::kStub)) {
    EXPECT_EQ(graph.neighbors(s).size(), 1u);
  }
}

}  // namespace
}  // namespace lispcp::routing
