// Tests for mapping/map_server: Map-Register wire format, registration
// lifecycle (TTL, refresh, expiry sweep), request forwarding vs proxy
// replies, negative replies, Map-Resolver routing, and the end-to-end
// Map-Server control plane on the standard topology.
#include <gtest/gtest.h>

#include "mapping/map_server.hpp"
#include "net/ports.hpp"
#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using mapping::MapResolver;
using mapping::MapServer;
using mapping::MapServerConfig;

lisp::MapEntry site_entry(std::uint8_t site, std::uint32_t ttl = 300) {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix(net::Ipv4Address(100, 64, site, 0), 24);
  entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, site, 0, 1), 1, 100, true},
                 lisp::Rloc{net::Ipv4Address(11, site, 0, 1), 2, 100, true}};
  entry.ttl_seconds = ttl;
  return entry;
}

TEST(MapRegister, WireRoundTrip) {
  const lisp::MapRegister original(42, 180, {site_entry(1), site_entry(2)});
  net::ByteWriter w;
  original.serialize(w);
  EXPECT_EQ(w.size(), original.wire_size());
  net::ByteReader r(w.view());
  auto parsed = lisp::MapRegister::parse_wire(r);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(parsed->nonce(), 42u);
  EXPECT_EQ(parsed->ttl_seconds(), 180u);
  ASSERT_EQ(parsed->entries().size(), 2u);
  EXPECT_EQ(parsed->entries()[0], site_entry(1));
  EXPECT_EQ(parsed->entries()[1], site_entry(2));
}

// ---------------------------------------------------------------------------
// A small star: MS and MR and two "ETR stand-in" xTRs around a hub.

struct MsWorld {
  MsWorld() : network(sim) {
    hub = &network.make<sim::Node>("hub");
    MapServerConfig mscfg;
    mscfg.sweep_interval = sim::SimDuration::seconds(1);
    ms = &network.make<MapServer>("ms", net::Ipv4Address(192, 0, 5, 1), mscfg);
    mr = &network.make<MapResolver>("mr", net::Ipv4Address(192, 0, 6, 1));

    lisp::XtrConfig xcfg;
    xcfg.itr_role = true;
    xcfg.etr_role = true;
    xcfg.local_eid_prefixes = {net::Ipv4Prefix(net::Ipv4Address(100, 64, 1, 0), 24)};
    xcfg.eid_space = {net::Ipv4Prefix(net::Ipv4Address(100, 64, 0, 0), 10)};
    etr = &network.make<lisp::TunnelRouter>("etr", net::Ipv4Address(10, 1, 0, 1),
                                            xcfg);
    lisp::XtrConfig icfg = xcfg;
    icfg.local_eid_prefixes = {net::Ipv4Prefix(net::Ipv4Address(100, 64, 9, 0), 24)};
    itr = &network.make<lisp::TunnelRouter>("itr", net::Ipv4Address(10, 9, 0, 1),
                                            icfg);
    itr->set_resolution_strategy(
        std::make_unique<lisp::UnicastPullResolution>(mr->address()));
    etr->set_site_mappings({site_entry(1)});

    src = &network.make<sim::Node>("src");
    src->add_address(net::Ipv4Address(100, 64, 9, 5));

    sim::LinkConfig lcfg;
    lcfg.delay = sim::SimDuration::millis(5);
    for (sim::Node* n : {static_cast<sim::Node*>(ms),
                         static_cast<sim::Node*>(mr),
                         static_cast<sim::Node*>(etr),
                         static_cast<sim::Node*>(itr)}) {
      network.connect(hub->id(), n->id(), lcfg);
      network.add_host_route(hub->id(), n->address(), n->id());
      network.add_route(n->id(), net::Ipv4Prefix(), hub->id());
    }
    network.connect(src->id(), itr->id(), lcfg);
    network.add_route(src->id(), net::Ipv4Prefix(), itr->id());
    mr->add_map_server_route(site_entry(1).eid_prefix, ms->address());
  }

  /// Sends one EID-to-EID data packet through the ITR (cold-cache miss).
  void send_data(net::Ipv4Address to) {
    net::TcpHeader tcp;
    src->send(net::Packet::tcp(src->address(), to, tcp, 0));
  }

  void register_site(std::uint32_t ttl = 300) {
    etr->send(net::Packet::udp(
        etr->rloc(), ms->address(), net::ports::kLispControl,
        net::ports::kLispControl,
        std::make_shared<lisp::MapRegister>(1, ttl,
                                            std::vector{site_entry(1)})));
  }

  sim::Simulator sim;
  sim::Network network;
  sim::Node* hub = nullptr;
  sim::Node* src = nullptr;
  MapServer* ms = nullptr;
  MapResolver* mr = nullptr;
  lisp::TunnelRouter* etr = nullptr;
  lisp::TunnelRouter* itr = nullptr;
};

TEST(MapServer, RegistrationIsStoredAndQueryable) {
  MsWorld world;
  world.register_site();
  world.sim.run();
  EXPECT_EQ(world.ms->stats().registers_received, 1u);
  EXPECT_EQ(world.ms->registration_count(), 1u);
  const auto* found =
      world.ms->find_registration(net::Ipv4Address(100, 64, 1, 77));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, site_entry(1));
  EXPECT_EQ(world.ms->find_registration(net::Ipv4Address(100, 64, 2, 1)),
            nullptr);
}

TEST(MapServer, RegistrationExpiresWithoutRefresh) {
  MsWorld world;
  world.register_site(/*ttl=*/3);
  world.sim.run();
  EXPECT_EQ(world.ms->registration_count(), 1u);
  world.sim.run_until(sim::SimTime::from_ns(10'000'000'000));
  EXPECT_EQ(world.ms->registration_count(), 0u);
  EXPECT_EQ(world.ms->stats().registrations_expired, 1u);
  EXPECT_EQ(world.ms->find_registration(net::Ipv4Address(100, 64, 1, 77)),
            nullptr);
}

TEST(MapServer, RefreshKeepsRegistrationAlive) {
  MsWorld world;
  mapping::RegistrarConfig rcfg;
  rcfg.ttl_seconds = 3;
  rcfg.refresh_interval = sim::SimDuration::seconds(1);
  mapping::EtrRegistrar registrar(*world.etr, world.ms->address(),
                                  {site_entry(1)}, rcfg);
  registrar.start();
  world.sim.run_until(sim::SimTime::from_ns(30'000'000'000));
  EXPECT_EQ(world.ms->registration_count(), 1u);
  EXPECT_GE(registrar.stats().registers_sent, 29u);
  EXPECT_EQ(world.ms->stats().registrations_expired, 0u);

  // Decommission: stop refreshing and the entry lapses.
  registrar.stop();
  world.sim.run_until(sim::SimTime::from_ns(40'000'000'000));
  EXPECT_EQ(world.ms->registration_count(), 0u);
}

TEST(MapServer, RegistrarRejectsRefreshSlowerThanTtl) {
  MsWorld world;
  mapping::RegistrarConfig bad;
  bad.ttl_seconds = 10;
  bad.refresh_interval = sim::SimDuration::seconds(10);
  EXPECT_THROW(mapping::EtrRegistrar(*world.etr, world.ms->address(),
                                     {site_entry(1)}, bad),
               std::invalid_argument);
}

TEST(MapServer, NonProxyForwardsToEtrWhoRepliesDirectly) {
  MsWorld world;
  world.register_site();
  world.sim.run();

  // The ITR misses on an EID in site 1 and resolves through MR -> MS -> ETR.
  world.send_data(net::Ipv4Address(100, 64, 1, 7));
  world.sim.run();

  EXPECT_EQ(world.mr->stats().requests_received, 1u);
  EXPECT_EQ(world.mr->stats().requests_forwarded, 1u);
  EXPECT_EQ(world.ms->stats().requests_forwarded, 1u);
  EXPECT_EQ(world.ms->stats().proxy_replies, 0u);
  EXPECT_EQ(world.etr->stats().map_requests_answered, 1u);
  EXPECT_EQ(world.itr->stats().map_replies_received, 1u);
  EXPECT_EQ(world.itr->cache().size(), 1u);
}

TEST(MapServer, ProxyModeAnswersFromRegistration) {
  MsWorld world;
  MapServerConfig proxy_cfg;
  proxy_cfg.proxy_reply = true;
  auto& proxy_ms = world.network.make<MapServer>(
      "ms-proxy", net::Ipv4Address(192, 0, 5, 2), proxy_cfg);
  sim::LinkConfig lcfg;
  lcfg.delay = sim::SimDuration::millis(5);
  world.network.connect(world.hub->id(), proxy_ms.id(), lcfg);
  world.network.add_host_route(world.hub->id(), proxy_ms.address(),
                               proxy_ms.id());
  world.network.add_route(proxy_ms.id(), net::Ipv4Prefix(), world.hub->id());
  world.mr->add_map_server_route(site_entry(1).eid_prefix, proxy_ms.address());

  world.etr->send(net::Packet::udp(
      world.etr->rloc(), proxy_ms.address(), net::ports::kLispControl,
      net::ports::kLispControl,
      std::make_shared<lisp::MapRegister>(1, 300,
                                          std::vector{site_entry(1)})));
  world.sim.run();

  world.send_data(net::Ipv4Address(100, 64, 1, 7));
  world.sim.run();

  EXPECT_EQ(proxy_ms.stats().proxy_replies, 1u);
  EXPECT_EQ(proxy_ms.stats().requests_forwarded, 0u);
  EXPECT_EQ(world.etr->stats().map_requests_answered, 0u);
  EXPECT_EQ(world.itr->stats().map_replies_received, 1u);
}

TEST(MapServer, UnregisteredEidGetsNegativeReply) {
  MsWorld world;  // nothing registered
  world.mr->add_map_server_route(
      net::Ipv4Prefix(net::Ipv4Address(100, 64, 0, 0), 10), world.ms->address());
  world.send_data(net::Ipv4Address(100, 64, 3, 7));
  world.sim.run();
  EXPECT_EQ(world.ms->stats().negative_replies, 1u);
  // The ITR caches the negative entry (no locators): the miss is remembered.
  EXPECT_EQ(world.itr->stats().map_replies_received, 1u);
}

TEST(MapResolver, UncoveredEidAnsweredNegativelyByResolver) {
  MsWorld world;  // resolver has only site 1's route
  world.send_data(net::Ipv4Address(100, 64, 40, 7));
  world.sim.run();
  EXPECT_EQ(world.mr->stats().negative_replies, 1u);
  EXPECT_EQ(world.ms->stats().requests_received, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end on the standard topology.

scenario::ExperimentConfig ms_config() {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kMapServer);
  config.spec.domains = 8;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.seed = 5;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(20);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

TEST(MapServerEndToEnd, SessionsEstablishOverTheMsControlPlane) {
  scenario::Experiment experiment(ms_config());
  const auto summary = experiment.run();
  EXPECT_GT(summary.sessions, 100u);
  EXPECT_GT(summary.established, summary.sessions * 9 / 10);
  EXPECT_GT(summary.miss_events, 0u) << "pull system: cold flows miss";

  auto& internet = experiment.internet();
  std::uint64_t registered = 0, forwarded = 0;
  for (auto* ms : internet.map_servers()) {
    registered += ms->registration_count();
    forwarded += ms->stats().requests_forwarded;
  }
  EXPECT_EQ(registered, 8u) << "every domain's site block is registered";
  EXPECT_GT(forwarded, 0u);
  std::uint64_t resolver_requests = 0;
  for (auto* mr : internet.map_resolvers()) {
    resolver_requests += mr->stats().requests_received;
  }
  EXPECT_GT(resolver_requests, 0u);
}

TEST(MapServerEndToEnd, ShardsSplitRegistrationsAcrossServers) {
  auto config = ms_config();
  config.spec.map_server_count = 4;
  scenario::Experiment experiment(config);
  experiment.run();
  auto& internet = experiment.internet();
  ASSERT_EQ(internet.map_servers().size(), 4u);
  for (auto* ms : internet.map_servers()) {
    EXPECT_EQ(ms->registration_count(), 2u) << "8 domains over 4 shards";
  }
}

TEST(MapServerEndToEnd, ProxyModeShavesTheEtrHop) {
  auto direct_config = ms_config();
  scenario::Experiment direct(direct_config);
  const auto d = direct.run();

  auto proxy_config = ms_config();
  proxy_config.spec.ms_proxy_reply = true;
  scenario::Experiment proxy(proxy_config);
  const auto p = proxy.run();

  // Identical workloads; the proxy arm's resolution is one hop shorter, so
  // its setup-latency tail cannot be worse.
  EXPECT_LE(p.t_setup_p95_ms, d.t_setup_p95_ms * 1.05);
  std::uint64_t proxy_answers = 0;
  for (auto* ms : proxy.internet().map_servers()) {
    proxy_answers += ms->stats().proxy_replies;
  }
  EXPECT_GT(proxy_answers, 0u);
}

}  // namespace
}  // namespace lispcp
