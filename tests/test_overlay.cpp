// ALT / CONS overlay tests over full Internet topologies: resolution paths,
// reply routing (direct vs relayed), latency ordering, and the
// data-over-overlay palliative.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig overlay_config(ControlPlaneKind kind, std::size_t domains = 20) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = domains;
  config.spec.hosts_per_domain = 1;
  config.spec.overlay_fanout = 4;
  config.spec.seed = 7;
  config.traffic.sessions_per_second = 10;
  config.traffic.duration = sim::SimDuration::seconds(20);
  return config;
}

TEST(Overlay, TreeIsBuiltWithExpectedShape) {
  Experiment experiment(overlay_config(ControlPlaneKind::kAltDrop));
  const auto& overlay = experiment.internet().overlay();
  // 20 domains / fanout 4 = 5 leaves, then 2 mid routers, then 1 root = 8.
  EXPECT_EQ(overlay.size(), 8u);
  // A leaf holds 4 domain routes plus the default route to its parent.
  EXPECT_EQ(overlay.front()->route_count(), 5u);
  // The root covers every domain and has no parent.
  EXPECT_EQ(overlay.back()->route_count(), 20u);
}

TEST(Overlay, AltResolutionTraversesOverlayRouters) {
  Experiment experiment(overlay_config(ControlPlaneKind::kAltDrop));
  experiment.run();
  std::uint64_t forwarded = 0;
  for (const auto* router : experiment.internet().overlay()) {
    forwarded += router->stats().requests_forwarded;
    // ALT never relays replies (they go natively, direct to the ITR).
    EXPECT_EQ(router->stats().replies_relayed, 0u);
  }
  EXPECT_GT(forwarded, 0u);
}

TEST(Overlay, ConsRepliesRelayThroughTree) {
  Experiment experiment(overlay_config(ControlPlaneKind::kCons));
  experiment.run();
  std::uint64_t relayed = 0;
  for (const auto* router : experiment.internet().overlay()) {
    relayed += router->stats().replies_relayed;
  }
  EXPECT_GT(relayed, 0u);
}

TEST(Overlay, ConsResolutionSlowerThanAlt) {
  // Same topology and workload; CONS replies retrace the tree, so the
  // time-to-established for cold flows must be longer than ALT's.
  auto alt = Experiment(overlay_config(ControlPlaneKind::kAltQueue)).run();

  auto cons_config = overlay_config(ControlPlaneKind::kCons);
  cons_config.spec.miss_policy = lisp::MissPolicy::kQueue;
  auto cons = Experiment(cons_config).run();

  ASSERT_GT(alt.established, 0u);
  ASSERT_GT(cons.established, 0u);
  // Compare p95 setup (cold flows dominate the tail).
  EXPECT_GT(cons.t_setup_p95_ms, alt.t_setup_p95_ms);
}

TEST(Overlay, DataForwardPalliativeDeliversFirstPacket) {
  Experiment experiment(overlay_config(ControlPlaneKind::kAltForward));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 20u);
  // First packets ride the overlay instead of being dropped: no SYN
  // retransmissions, and the overlay forwarded real data.
  EXPECT_EQ(summary.syn_retransmissions, 0u);
  std::uint64_t data_forwarded = 0;
  for (const auto* router : experiment.internet().overlay()) {
    data_forwarded += router->stats().data_forwarded;
  }
  EXPECT_GT(data_forwarded, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
}

TEST(Overlay, CacheHitsSkipTheOverlay) {
  auto config = overlay_config(ControlPlaneKind::kAltDrop, 4);
  config.traffic.zipf_alpha = 2.0;  // highly skewed: hot destination dominates
  Experiment experiment(config);
  const auto summary = experiment.run();
  // Far fewer resolutions than sessions: the cache absorbs the hot flows.
  EXPECT_LT(summary.miss_events, summary.sessions / 2);
}

TEST(Overlay, MissPolicyDropLosesExactlyFirstPackets) {
  Experiment experiment(overlay_config(ControlPlaneKind::kAltDrop));
  const auto summary = experiment.run();
  // Every drop at an ITR is a mapping-miss drop and each costs one SYN RTO.
  EXPECT_EQ(summary.miss_drops, summary.syn_retransmissions);
  EXPECT_GT(summary.miss_drops, 0u);
  // All sessions still complete eventually (TCP recovers).
  EXPECT_EQ(summary.established, summary.sessions);
}

}  // namespace
}  // namespace lispcp
