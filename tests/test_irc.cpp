// IRC engine tests: policy weighting, smooth-WRR distribution, EWMA load
// measurement against real link counters, failover handling.
#include <gtest/gtest.h>

#include <map>

#include "irc/irc_engine.hpp"
#include "sim/network.hpp"

namespace lispcp::irc {
namespace {

class Sink : public sim::Node {
 public:
  Sink(sim::Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }
  void deliver(net::Packet) override {}
};

/// Two border links: xtr0 <-> core (fast), xtr1 <-> core (slow / smaller).
struct Fixture {
  Fixture() : net(sim) {
    core = &net.make<sim::Node>("core");
    xtr0 = &net.make<Sink>("xtr0", net::Ipv4Address(10, 0, 0, 1));
    xtr1 = &net.make<Sink>("xtr1", net::Ipv4Address(10, 0, 0, 2));
    sim::LinkConfig fast;
    fast.delay = sim::SimDuration::millis(5);
    fast.bandwidth_bps = 100e6;
    sim::LinkConfig slow;
    slow.delay = sim::SimDuration::millis(20);
    slow.bandwidth_bps = 50e6;
    link0 = &net.connect(xtr0->id(), core->id(), fast);
    link1 = &net.connect(xtr1->id(), core->id(), slow);
  }

  std::vector<BorderLink> border() {
    return {BorderLink{xtr0->address(), link0, xtr0->id(), 100e6},
            BorderLink{xtr1->address(), link1, xtr1->id(), 50e6}};
  }

  std::map<net::Ipv4Address, int> draw(IrcEngine& engine, int n) {
    std::map<net::Ipv4Address, int> counts;
    for (int i = 0; i < n; ++i) ++counts[engine.choose_ingress()];
    return counts;
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Node* core = nullptr;
  Sink* xtr0 = nullptr;
  Sink* xtr1 = nullptr;
  sim::Link* link0 = nullptr;
  sim::Link* link1 = nullptr;
};

TEST(IrcEngine, RequiresLinks) {
  Fixture f;
  EXPECT_THROW(IrcEngine(f.net, {}, {}), std::invalid_argument);
}

TEST(IrcEngine, RejectsBadAlpha) {
  Fixture f;
  IrcConfig cfg;
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(IrcEngine(f.net, f.border(), cfg), std::invalid_argument);
  cfg.ewma_alpha = 1.5;
  EXPECT_THROW(IrcEngine(f.net, f.border(), cfg), std::invalid_argument);
}

TEST(IrcEngine, PrimaryBackupPinsToFirstLink) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kPrimaryBackup;
  IrcEngine engine(f.net, f.border(), cfg);
  auto counts = f.draw(engine, 100);
  EXPECT_EQ(counts[f.xtr0->address()], 100);
}

TEST(IrcEngine, PrimaryBackupFailsOverWhenPrimaryUnusable) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kPrimaryBackup;
  IrcEngine engine(f.net, f.border(), cfg);
  engine.set_link_usable(0, false);
  auto counts = f.draw(engine, 50);
  EXPECT_EQ(counts[f.xtr1->address()], 50);
  engine.set_link_usable(0, true);
  counts = f.draw(engine, 50);
  EXPECT_EQ(counts[f.xtr0->address()], 50);
}

TEST(IrcEngine, RoundRobinAlternatesEvenly) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kRoundRobin;
  IrcEngine engine(f.net, f.border(), cfg);
  auto counts = f.draw(engine, 100);
  EXPECT_EQ(counts[f.xtr0->address()], 50);
  EXPECT_EQ(counts[f.xtr1->address()], 50);
}

TEST(IrcEngine, CapacityWeightedSplitsProportionally) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kCapacityWeighted;
  IrcEngine engine(f.net, f.border(), cfg);
  auto counts = f.draw(engine, 300);
  // 100 Mbit vs 50 Mbit => 2:1.
  EXPECT_EQ(counts[f.xtr0->address()], 200);
  EXPECT_EQ(counts[f.xtr1->address()], 100);
}

TEST(IrcEngine, LowestLatencyPicksFastestLink) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kLowestLatency;
  IrcEngine engine(f.net, f.border(), cfg);
  auto counts = f.draw(engine, 40);
  EXPECT_EQ(counts[f.xtr0->address()], 40);  // 5 ms < 20 ms
}

TEST(IrcEngine, LeastLoadedShiftsAwayFromLoadedLink) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kLeastLoaded;
  cfg.refresh_interval = sim::SimDuration::millis(100);
  cfg.ewma_alpha = 1.0;  // react immediately for the test
  IrcEngine engine(f.net, f.border(), cfg);
  engine.start();

  // Saturate link0's *ingress* direction (core -> xtr0) at ~80%:
  // 100 Mbit/s * 0.1 s * 0.8 = 1 MB over the measurement window.
  f.net.add_host_route(f.core->id(), f.xtr0->address(), f.xtr0->id());
  f.net.add_host_route(f.core->id(), f.xtr1->address(), f.xtr1->id());
  for (int i = 0; i < 1000; ++i) {
    f.core->send(net::Packet::udp(net::Ipv4Address(192, 0, 0, 1),
                                  f.xtr0->address(), 1, 2,
                                  std::make_shared<net::RawPayload>(972)));
  }
  // Stop after the first refresh (100 ms) so the loaded window is what the
  // instant-EWMA reflects.
  f.sim.run_until(f.sim.now() + sim::SimDuration::millis(150));

  EXPECT_GT(engine.ingress_load(0), 0.3);
  EXPECT_LT(engine.ingress_load(1), 0.05);
  auto counts = f.draw(engine, 100);
  // Most new flows steered to the unloaded link.
  EXPECT_GT(counts[f.xtr1->address()], 60);
  EXPECT_GT(engine.refresh_count(), 0u);
}

TEST(IrcEngine, SiteMappingReflectsWeights) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kCapacityWeighted;
  IrcEngine engine(f.net, f.border(), cfg);
  const auto prefix = net::Ipv4Prefix::from_string("100.64.0.0/24");
  auto mapping = engine.site_mapping(prefix);
  EXPECT_EQ(mapping.eid_prefix, prefix);
  ASSERT_EQ(mapping.rlocs.size(), 2u);
  EXPECT_EQ(mapping.rlocs[0].priority, 1);
  EXPECT_EQ(mapping.rlocs[1].priority, 1);
  EXPECT_NEAR(mapping.rlocs[0].weight, 67, 2);
  EXPECT_NEAR(mapping.rlocs[1].weight, 33, 2);
  EXPECT_TRUE(mapping.rlocs[0].reachable);
}

TEST(IrcEngine, SiteMappingMarksUnusableLinksUnreachable) {
  Fixture f;
  IrcEngine engine(f.net, f.border(), {});
  engine.set_link_usable(1, false);
  auto mapping = engine.site_mapping(net::Ipv4Prefix::from_string("100.64.0.0/24"));
  EXPECT_TRUE(mapping.rlocs[0].reachable);
  EXPECT_FALSE(mapping.rlocs[1].reachable);
}

TEST(IrcEngine, AllLinksDownDegradesGracefully) {
  Fixture f;
  IrcEngine engine(f.net, f.border(), {});
  engine.set_link_usable(0, false);
  engine.set_link_usable(1, false);
  // Still returns *something* rather than crashing.
  EXPECT_EQ(engine.choose_ingress(), f.xtr0->address());
}

TEST(IrcEngine, HashPinnedChoiceIsStable) {
  Fixture f;
  IrcConfig cfg;
  cfg.policy = TePolicy::kRoundRobin;
  IrcEngine engine(f.net, f.border(), cfg);
  const auto first = engine.choose_ingress_for(12345);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(engine.choose_ingress_for(12345), first);
  }
}

TEST(IrcEngine, PolicyNames) {
  EXPECT_STREQ(to_string(TePolicy::kLeastLoaded).c_str(), "least-loaded");
  EXPECT_STREQ(to_string(TePolicy::kRoundRobin).c_str(), "round-robin");
}

}  // namespace
}  // namespace lispcp::irc
