// Sweep-API tests: expansion order and seed stability, parallel/serial
// record identity, probe field plumbing, pivot rendering, and the JSON
// sink's round-trip fidelity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "scenario/sweep.hpp"
#include "sim/rng.hpp"

namespace lispcp::scenario {
namespace {

using topo::ControlPlaneKind;

/// A small but real sweep: 2 control planes x 2 cache sizes on a tiny
/// topology (fast enough for CI, large enough to exercise the machinery).
SweepSpec tiny_sweep() {
  auto spec = SweepSpec::steady_state();
  spec.named("tiny")
      .base([](ExperimentConfig& config) {
        config.spec.domains = 4;
        config.spec.seed = 7;
        config.traffic.sessions_per_second = 10;
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.drain = sim::SimDuration::seconds(10);
      })
      .axis(Axis::control_planes(
          "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce}))
      .axis(Axis::integers("cache entries", {2, 8},
                           [](ExperimentConfig& config, std::uint64_t v) {
                             config.spec.cache_capacity = v;
                           }));
  return spec;
}

Runner tiny_runner() {
  Runner runner(tiny_sweep());
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("drops", s.miss_drops);
    record.set_real("t_setup mean (ms)", s.t_setup_mean_ms);
    record.set_percent("loss rate", s.first_packet_loss_rate());
    record.set_bool("clean", s.miss_drops == 0);
  });
  return runner;
}

// ---------------------------------------------------------------------------
// Expansion
// ---------------------------------------------------------------------------

TEST(SweepSpec, CrossProductOrderFirstAxisSlowest) {
  const auto points = tiny_sweep().expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].series, "lisp-alt(drop) / 2");
  EXPECT_EQ(points[1].series, "lisp-alt(drop) / 8");
  EXPECT_EQ(points[2].series, "lisp-pce / 2");
  EXPECT_EQ(points[3].series, "lisp-pce / 8");
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // Axis mutations actually landed in the configs.
  EXPECT_EQ(points[0].config.spec.kind, ControlPlaneKind::kAltDrop);
  EXPECT_EQ(points[0].config.spec.cache_capacity, 2u);
  EXPECT_EQ(points[3].config.spec.kind, ControlPlaneKind::kPce);
  EXPECT_EQ(points[3].config.spec.cache_capacity, 8u);
  // Control-plane axis applies the registry preset (ALT-drop pins kDrop).
  EXPECT_EQ(points[0].config.spec.miss_policy, lisp::MissPolicy::kDrop);
}

TEST(SweepSpec, ZipAdvancesAxesTogether) {
  auto spec = SweepSpec::steady_state();
  spec.axis(Axis::integers("cache", {2, 4, 8},
                           [](ExperimentConfig& c, std::uint64_t v) {
                             c.spec.cache_capacity = v;
                           }))
      .zip(Axis::integers("ttl", {10, 20, 30},
                          [](ExperimentConfig& c, std::uint64_t v) {
                            c.spec.mapping_ttl_seconds =
                                static_cast<std::uint32_t>(v);
                          }));
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1].config.spec.cache_capacity, 4u);
  EXPECT_EQ(points[1].config.spec.mapping_ttl_seconds, 20u);
  EXPECT_EQ(points[1].series, "4 / 20");
}

TEST(Axis, DuplicateLabelsThrow) {
  // 0.61 and 0.64 both render "0.6" at precision 1; pivot/table rows would
  // silently merge, so the axis refuses the spec.
  EXPECT_THROW(Axis::reals("alpha", {0.61, 0.64},
                           [](ExperimentConfig&, double) {}, /*precision=*/1),
               std::invalid_argument);
}

TEST(Runner, FilterMatchesResolvedControlPlaneName) {
  // The axis uses short labels ("pce"), but the registered name still
  // selects the points (the CLI passes names like "lisp-pce" through).
  auto spec = SweepSpec::steady_state();
  spec.base([](ExperimentConfig& config) {
        config.spec.domains = 4;
        config.traffic.sessions_per_second = 5;
        config.traffic.duration = sim::SimDuration::seconds(2);
        config.drain = sim::SimDuration::seconds(5);
      })
      .axis(Axis::control_planes(
          "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce},
          {"alt", "pce"}));
  Runner runner(std::move(spec));
  RunOptions options;
  options.filter = "lisp-pce";  // not a substring of any series label
  const auto result = runner.run(options);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.points().front().config.spec.kind, ControlPlaneKind::kPce);
  EXPECT_EQ(result.points().front().series, "pce");
}

TEST(SweepSpec, DuplicateAxisNamesThrow) {
  auto spec = SweepSpec::steady_state();
  spec.axis(Axis::integers("cache", {2, 4},
                           [](ExperimentConfig&, std::uint64_t) {}));
  EXPECT_THROW(spec.axis(Axis::integers("cache", {16, 32},
                                        [](ExperimentConfig&, std::uint64_t) {})),
               std::invalid_argument);
  EXPECT_THROW(spec.zip(Axis::integers("cache", {1, 2},
                                       [](ExperimentConfig&, std::uint64_t) {})),
               std::invalid_argument);
}

TEST(SweepSpec, ZipArityMismatchThrows) {
  auto spec = SweepSpec::steady_state();
  spec.axis(Axis::integers("cache", {2, 4},
                           [](ExperimentConfig&, std::uint64_t) {}));
  EXPECT_THROW(spec.zip(Axis::integers("ttl", {1, 2, 3},
                                       [](ExperimentConfig&, std::uint64_t) {})),
               std::invalid_argument);
}

TEST(SweepSpec, SharedSeedModeKeepsBaseSeed) {
  const auto points = tiny_sweep().expand();
  for (const auto& point : points) {
    EXPECT_EQ(point.seed, 7u);
    EXPECT_EQ(point.config.spec.seed, 7u);
  }
}

TEST(SweepSpec, PerPointSeedsAreStableUnderAxisReordering) {
  auto forward = tiny_sweep();
  forward.seed_mode(SeedMode::kPerPoint);
  // Same axes, declared in the opposite order.
  auto reversed = SweepSpec::steady_state();
  reversed.named("tiny")
      .base([](ExperimentConfig& config) {
        config.spec.domains = 4;
        config.spec.seed = 7;
        config.traffic.sessions_per_second = 10;
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.drain = sim::SimDuration::seconds(10);
      })
      .axis(Axis::integers("cache entries", {2, 8},
                           [](ExperimentConfig& config, std::uint64_t v) {
                             config.spec.cache_capacity = v;
                           }))
      .axis(Axis::control_planes(
          "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce}))
      .seed_mode(SeedMode::kPerPoint);

  const auto a = forward.expand();
  const auto b = reversed.expand();
  ASSERT_EQ(a.size(), b.size());
  // Points pair up by coordinate set, in a different order; each pair must
  // carry the same derived seed.
  for (const auto& pa : a) {
    bool matched = false;
    for (const auto& pb : b) {
      if (pb.config.spec.kind == pa.config.spec.kind &&
          pb.config.spec.cache_capacity == pa.config.spec.cache_capacity) {
        EXPECT_EQ(pa.seed, pb.seed) << pa.series;
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << pa.series;
  }
  // Distinct points get distinct seeds, all different from the base seed.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i].seed, 7u);
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].seed, a[j].seed);
    }
  }
}

TEST(Rng, DeriveIsDrawCountIndependent) {
  sim::Rng a(42);
  sim::Rng b(42);
  (void)b.uniform();
  (void)b.uniform_int(0, 100);
  const auto da = a.derive(5);
  const auto db = b.derive(5);
  EXPECT_EQ(da.seed(), db.seed());
  EXPECT_NE(da.seed(), a.derive(6).seed());
  EXPECT_EQ(sim::Rng::derive_seed(42, 5), da.seed());
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

TEST(Runner, ParallelMatchesSerialByteForByte) {
  RunOptions serial;
  serial.jobs = 1;
  RunOptions parallel;
  parallel.jobs = 4;
  const auto a = tiny_runner().run(serial);
  const auto b = tiny_runner().run(parallel);
  ASSERT_EQ(a.records().size(), 4u);
  EXPECT_TRUE(a == b);
  // Belt and braces: the serialised artifacts are byte-identical too.
  std::ostringstream ja, jb, ca, cb;
  a.to_json(ja);
  b.to_json(jb);
  a.to_csv(ca);
  b.to_csv(cb);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(Runner, CoordinatesLeadTheRecord) {
  RunOptions options;
  const auto result = tiny_runner().run(options);
  const auto& fields = result.records().front().fields();
  ASSERT_GE(fields.size(), 3u);
  EXPECT_EQ(fields[0].first, "control plane");
  EXPECT_EQ(fields[1].first, "cache entries");
  EXPECT_EQ(fields[2].first, "sessions");
  EXPECT_EQ(fields[0].second.as_text(), "lisp-alt(drop)");
  EXPECT_EQ(fields[1].second.as_int(), 2u);
}

TEST(Runner, FilterSelectsMatchingPoints) {
  RunOptions options;
  options.filter = "lisp-pce";
  const auto result = tiny_runner().run(options);
  ASSERT_EQ(result.size(), 2u);
  for (const auto& point : result.points()) {
    EXPECT_EQ(point.config.spec.kind, ControlPlaneKind::kPce);
    // Filtering keeps the point's expansion identity (index, seed).
    EXPECT_GE(point.index, 2u);
  }
}

TEST(Runner, StatefulProbeRunsPerPoint) {
  // A probe that records construction-time state: one instance per point.
  class CountingProbe final : public Probe {
   public:
    void on_configured(Experiment&, const RunPoint& point) override {
      configured_index_ = point.index;
    }
    void on_finished(Experiment&, const RunPoint& point, Record& record) override {
      record.set_int("probe saw", configured_index_);
      record.set_bool("consistent", configured_index_ == point.index);
    }

   private:
    std::size_t configured_index_ = ~0ull;
  };
  Runner runner(tiny_sweep());
  runner.probe_factory([] { return std::make_unique<CountingProbe>(); });
  RunOptions options;
  options.jobs = 4;
  const auto result = runner.run(options);
  for (std::size_t i = 0; i < result.size(); ++i) {
    const Field* consistent = result.records()[i].find("consistent");
    ASSERT_NE(consistent, nullptr);
    EXPECT_TRUE(consistent->as_bool()) << i;
    EXPECT_EQ(result.records()[i].find("probe saw")->as_int(), i);
  }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(ResultSet, FlatTableUsesFirstAppearanceColumnOrder) {
  const auto result = tiny_runner().run({});
  const auto table = result.table();
  ASSERT_GE(table.headers().size(), 4u);
  EXPECT_EQ(table.headers()[0], "control plane");
  EXPECT_EQ(table.headers()[1], "cache entries");
  EXPECT_EQ(table.rows(), 4u);
}

TEST(ResultSet, PivotGroupsRowsAndColumns) {
  const auto result = tiny_runner().run({});
  const auto table =
      result.pivot("cache entries", "control plane", {"drops", "sessions"});
  // Rows: 2 cache sizes.  Columns: row field + 2 planes x 2 value fields.
  EXPECT_EQ(table.rows(), 2u);
  ASSERT_EQ(table.headers().size(), 5u);
  EXPECT_EQ(table.headers()[0], "cache entries");
  EXPECT_EQ(table.headers()[1], "lisp-alt(drop) drops");
  EXPECT_EQ(table.headers()[2], "lisp-alt(drop) sessions");
  EXPECT_EQ(table.headers()[3], "lisp-pce drops");
  EXPECT_EQ(table.headers()[4], "lisp-pce sessions");
}

TEST(ResultSet, PivotOmitsColumnsNoRecordCarries) {
  const auto result = tiny_runner().run({});
  const auto table = result.pivot("cache entries", "control plane",
                                  {"drops", "no such field"});
  ASSERT_EQ(table.headers().size(), 3u);  // row field + one per plane
  EXPECT_EQ(table.headers()[1], "lisp-alt(drop)" + std::string(" drops"));
}

// ---------------------------------------------------------------------------
// JSON sink round-trip
// ---------------------------------------------------------------------------

/// Minimal JSON reader for the sink's known output shape (objects, arrays,
/// strings with escapes, numbers, booleans) — just enough to verify the
/// round trip without a JSON dependency.
class MiniJson {
 public:
  explicit MiniJson(std::string text) : text_(std::move(text)) {}

  /// Value of `"name": <scalar>` at the i-th occurrence of the key.
  std::string scalar_after(const std::string& key, std::size_t occurrence = 0) {
    const std::string needle = "\"" + key + "\":";
    std::size_t pos = 0;
    for (std::size_t i = 0; i <= occurrence; ++i) {
      pos = text_.find(needle, pos);
      if (pos == std::string::npos) return "<missing>";
      pos += needle.size();
    }
    while (pos < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos]))) ++pos;
    if (pos >= text_.size()) return "<missing>";
    if (text_[pos] == '"') return parse_string(pos);
    std::size_t end = pos;
    while (end < text_.size() &&
           std::string(",}]\n ").find(text_[end]) == std::string::npos) {
      ++end;
    }
    return text_.substr(pos, end - pos);
  }

 private:
  std::string parse_string(std::size_t pos) {
    std::string out;
    ++pos;  // opening quote
    while (pos < text_.size() && text_[pos] != '"') {
      if (text_[pos] == '\\' && pos + 1 < text_.size()) {
        ++pos;
        switch (text_[pos]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += text_[pos];
        }
      } else {
        out += text_[pos];
      }
      ++pos;
    }
    return out;
  }

  std::string text_;
};

TEST(ResultSet, JsonRoundTripsFieldNamesAndValues) {
  std::vector<RunPoint> points(1);
  points[0].index = 3;
  points[0].seed = 99;
  points[0].series = "pce / 8";
  Record record;
  record.set_text("control plane", "lisp-pce");
  record.set_int("drops", 42);
  record.set_real("t (ms)", 1.5);
  record.set_percent("share", 0.25);
  record.set_bool("clean", true);
  record.set_text("notes", "quote \" and, comma");
  ResultSet result("roundtrip", std::move(points), {record});

  std::ostringstream os;
  result.to_json(os);
  MiniJson json(os.str());
  EXPECT_EQ(json.scalar_after("name"), "roundtrip");
  EXPECT_EQ(json.scalar_after("index"), "3");
  EXPECT_EQ(json.scalar_after("seed"), "99");
  EXPECT_EQ(json.scalar_after("series"), "pce / 8");
  EXPECT_EQ(json.scalar_after("control plane"), "lisp-pce");
  EXPECT_EQ(json.scalar_after("drops"), "42");
  EXPECT_EQ(json.scalar_after("t (ms)"), "1.5");
  EXPECT_EQ(json.scalar_after("share"), "0.25");
  EXPECT_EQ(json.scalar_after("clean"), "true");
  EXPECT_EQ(json.scalar_after("notes"), "quote \" and, comma");
}

TEST(Field, CellRendering) {
  EXPECT_EQ(Field::integer(42).cell(), "42");
  EXPECT_EQ(Field::real(3.14159, 2).cell(), "3.14");
  EXPECT_EQ(Field::real(3.14159, 3).cell(), "3.142");
  EXPECT_EQ(Field::percent(0.5).cell(), "50.00%");
  EXPECT_EQ(Field::boolean(true).cell(), "yes");
  EXPECT_EQ(Field::text("x").cell(), "x");
}

TEST(Record, SetReplacesInPlace) {
  Record record;
  record.set_int("a", 1);
  record.set_int("b", 2);
  record.set_int("a", 3);  // overwrite keeps position
  ASSERT_EQ(record.fields().size(), 2u);
  EXPECT_EQ(record.fields()[0].first, "a");
  EXPECT_EQ(record.fields()[0].second.as_int(), 3u);
}

// ---------------------------------------------------------------------------
// Multi-seed replication
// ---------------------------------------------------------------------------

TEST(SweepSpec, ReplicationsExpandEachPointIntoSeedDerivedReplicas) {
  auto spec = tiny_sweep();
  spec.seed_mode(SeedMode::kPerPoint).replications(3);
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 12u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].group, i / 3);
    EXPECT_EQ(points[i].replica, i % 3);
    // Replicas share the series (and so the filter behaviour) but carry a
    // trailing "replica" coordinate.
    EXPECT_EQ(points[i].series, points[i - i % 3].series);
    ASSERT_FALSE(points[i].coordinates.empty());
    EXPECT_EQ(points[i].coordinates.back().first, "replica");
    EXPECT_EQ(points[i].coordinates.back().second.as_int(), i % 3);
  }
  // Replica 0 keeps the point seed; later replicas derive from it.
  const auto unreplicated = tiny_sweep().seed_mode(SeedMode::kPerPoint).expand();
  for (std::size_t g = 0; g < unreplicated.size(); ++g) {
    EXPECT_EQ(points[3 * g].seed, unreplicated[g].seed);
    EXPECT_EQ(points[3 * g + 1].seed,
              sim::Rng::derive_seed(unreplicated[g].seed, 1));
    EXPECT_EQ(points[3 * g + 2].seed,
              sim::Rng::derive_seed(unreplicated[g].seed, 2));
    EXPECT_NE(points[3 * g + 1].seed, points[3 * g].seed);
    EXPECT_EQ(points[3 * g + 1].config.dfz.internet.seed,
              points[3 * g + 1].seed);
  }
}

TEST(SweepSpec, ReplicationsOfOneIsTheIdentity) {
  const auto base = tiny_sweep().expand();
  auto spec = tiny_sweep();
  spec.replications(1);
  const auto same = spec.expand();
  ASSERT_EQ(same.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(same[i].seed, base[i].seed);
    EXPECT_EQ(same[i].series, base[i].series);
    EXPECT_EQ(same[i].coordinates.size(), base[i].coordinates.size());
  }
  EXPECT_THROW(spec.replications(0), std::invalid_argument);
}

TEST(SweepSpec, ReplicaAxisNameCollisionThrows) {
  auto spec = tiny_sweep();
  spec.axis(Axis::integers("replica", {1, 2},
                           [](ExperimentConfig&, std::uint64_t) {}))
      .replications(2);
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

/// A replicated sweep over a synthetic executor whose "metric" is a pure
/// function of the seed — aggregation math is then exactly checkable.
ResultSet replicated_result() {
  SweepSpec spec;
  spec.named("agg")
      .base([](ExperimentConfig& config) { config.spec.seed = 11; })
      .axis(Axis::integers("x", {1, 2},
                           [](ExperimentConfig&, std::uint64_t) {}))
      .seed_mode(SeedMode::kPerPoint)
      .replications(4);
  Runner runner(std::move(spec));
  runner.execute([](const RunPoint& point, Record& record) {
    record.set_int("value", point.seed % 97);
    record.set_real("half", static_cast<double>(point.seed % 97) / 2.0, 3);
    record.set_text("note", "n" + std::to_string(point.replica));
    if (point.replica == 0) record.set_int("only-once", 5);
  });
  return runner.run();
}

TEST(ResultSet, AggregateFoldsReplicasIntoSpreadColumns) {
  const ResultSet result = replicated_result();
  ASSERT_TRUE(result.replicated());
  ASSERT_EQ(result.size(), 8u);
  const ResultSet agg = result.aggregate();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_FALSE(agg.replicated());

  for (std::size_t g = 0; g < 2; ++g) {
    const Record& record = agg.records()[g];
    // Coordinates pass through, the replica index does not.
    ASSERT_NE(record.find("x"), nullptr);
    EXPECT_EQ(record.find("replica"), nullptr);
    ASSERT_NE(record.find("replicas"), nullptr);
    EXPECT_EQ(record.find("replicas")->as_int(), 4u);

    // Hand-computed spread over the four seed-derived values.
    double sum = 0.0, lo = 1e99, hi = -1e99;
    std::vector<double> values;
    for (std::size_t r = 0; r < 4; ++r) {
      const double v = static_cast<double>(
          result.records()[4 * g + r].find("value")->as_int());
      values.push_back(v);
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double mean = sum / 4.0;
    double m2 = 0.0;
    for (const double v : values) m2 += (v - mean) * (v - mean);
    const double sd = std::sqrt(m2 / 3.0);

    ASSERT_NE(record.find("value mean"), nullptr);
    EXPECT_NEAR(record.find("value mean")->as_real(), mean, 1e-9);
    EXPECT_NEAR(record.find("value sd")->as_real(), sd, 1e-9);
    EXPECT_EQ(record.find("value min")->as_int(),
              static_cast<std::uint64_t>(lo));
    EXPECT_EQ(record.find("value max")->as_int(),
              static_cast<std::uint64_t>(hi));
    // Real metrics keep their precision; text metrics copy replica 0's.
    ASSERT_NE(record.find("half mean"), nullptr);
    EXPECT_NEAR(record.find("half mean")->as_real(), mean / 2.0, 1e-9);
    ASSERT_NE(record.find("note"), nullptr);
    EXPECT_EQ(record.find("note")->as_text(), "n0");
    // A field only some replicas carry aggregates over those that do.
    ASSERT_NE(record.find("only-once mean"), nullptr);
    EXPECT_NEAR(record.find("only-once mean")->as_real(), 5.0, 1e-9);
  }
}

TEST(ResultSet, AggregateIsIdentityWithoutReplicas) {
  Runner runner(tiny_sweep());
  runner.execute([](const RunPoint& point, Record& record) {
    record.set_int("v", point.index);
  });
  const ResultSet result = runner.run();
  EXPECT_FALSE(result.replicated());
  EXPECT_TRUE(result.aggregate() == result);
}

TEST(ResultSet, JsonCarriesAggregatesForReplicatedSets) {
  const ResultSet result = replicated_result();
  std::ostringstream os;
  result.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"sd\""), std::string::npos);
  EXPECT_NE(json.find("\"min\""), std::string::npos);
  EXPECT_NE(json.find("\"max\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 4"), std::string::npos);
  // Coordinates are not error-barred.
  EXPECT_EQ(json.find("\"x\": {\"mean\""), std::string::npos);

  std::ostringstream plain;
  Runner runner(tiny_sweep());
  runner.execute([](const RunPoint&, Record& record) {
    record.set_int("v", 1);
  });
  runner.run().to_json(plain);
  EXPECT_EQ(plain.str().find("aggregates"), std::string::npos)
      << "unreplicated sinks must stay byte-compatible";
}

TEST(Runner, ReplicatedSweepIsJobCountInvariant) {
  auto make = [] {
    SweepSpec spec;
    spec.named("par")
        .base([](ExperimentConfig& config) { config.spec.seed = 3; })
        .axis(Axis::integers("x", {1, 2, 3},
                             [](ExperimentConfig&, std::uint64_t) {}))
        .seed_mode(SeedMode::kPerPoint)
        .replications(3);
    Runner runner(std::move(spec));
    runner.execute([](const RunPoint& point, Record& record) {
      record.set_int("value", point.seed % 1013);
    });
    return runner;
  };
  RunOptions serial;
  RunOptions parallel;
  parallel.jobs = 4;
  EXPECT_TRUE(make().run(serial) == make().run(parallel));
}

}  // namespace
}  // namespace lispcp::scenario
