// End-to-end integration tests: full sessions (DNS + TCP + data) across the
// emulated Internet under each control plane.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::TrafficMode;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig small_config(ControlPlaneKind kind) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 4;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.seed = 42;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(10);
  config.traffic.zipf_alpha = 0.8;
  config.mode = TrafficMode::kSingleSource;
  return config;
}

TEST(Integration, PlainIpSessionsComplete) {
  Experiment experiment(small_config(ControlPlaneKind::kPlainIp));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.dns_failures, 0u);
  EXPECT_EQ(summary.connect_failures, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
  EXPECT_EQ(summary.completed, summary.sessions);
  EXPECT_EQ(summary.syn_retransmissions, 0u);
  EXPECT_EQ(summary.encapsulated, 0u);  // no LISP in the plain-IP baseline
}

TEST(Integration, AltDropSessionsRecoverViaRetransmission) {
  Experiment experiment(small_config(ControlPlaneKind::kAltDrop));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.dns_failures, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
  // Cold map-caches: the very first SYN toward each new destination site is
  // dropped at the ITR and recovered by TCP retransmission.
  EXPECT_GT(summary.miss_events, 0u);
  EXPECT_GT(summary.syn_retransmissions, 0u);
  EXPECT_GT(summary.encapsulated, 0u);
}

TEST(Integration, AltQueueSessionsDoNotRetransmit) {
  Experiment experiment(small_config(ControlPlaneKind::kAltQueue));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.established, summary.sessions);
  EXPECT_GT(summary.miss_events, 0u);
  // Queued, not dropped: resolution delays the SYN but TCP never times out
  // (resolution ~60ms << 3s RTO).
  EXPECT_EQ(summary.syn_retransmissions, 0u);
  EXPECT_EQ(summary.miss_drops, 0u);
}

TEST(Integration, ConsSessionsComplete) {
  Experiment experiment(small_config(ControlPlaneKind::kCons));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.established, summary.sessions);
  EXPECT_GT(summary.miss_events, 0u);
}

TEST(Integration, NerdHasNoMissesAfterBootstrap) {
  Experiment experiment(small_config(ControlPlaneKind::kNerd));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.established, summary.sessions);
  // The full database is pushed before traffic starts: no misses at all.
  EXPECT_EQ(summary.miss_events, 0u);
  EXPECT_EQ(summary.syn_retransmissions, 0u);
}

TEST(Integration, PceHasNoDropsAndNoQueueing) {
  Experiment experiment(small_config(ControlPlaneKind::kPce));
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 50u);
  EXPECT_EQ(summary.dns_failures, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
  EXPECT_EQ(summary.completed, summary.sessions);
  // Claim (i): neither dropped nor queued during mapping resolution.
  EXPECT_EQ(summary.miss_drops, 0u);
  EXPECT_EQ(summary.syn_retransmissions, 0u);
  EXPECT_GT(summary.encapsulated, 0u);
}

TEST(Integration, PceSetupMatchesPlainIpSetup) {
  auto pce_summary = Experiment(small_config(ControlPlaneKind::kPce)).run();
  auto ip_summary = Experiment(small_config(ControlPlaneKind::kPlainIp)).run();
  // Claim (ii) corollary: with the PCE control plane, session setup time is
  // indistinguishable from the pre-LISP Internet (same formula, no T_map).
  EXPECT_NEAR(pce_summary.t_setup_p50_ms, ip_summary.t_setup_p50_ms,
              ip_summary.t_setup_p50_ms * 0.05 + 0.5);
}

TEST(Integration, NoUnexpectedDeliveriesAnywhere) {
  Experiment experiment(small_config(ControlPlaneKind::kPce));
  experiment.run();
  auto& net = experiment.internet().network();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& node = net.node(sim::NodeId(static_cast<std::uint32_t>(i)));
    EXPECT_EQ(node.unexpected_deliveries(), 0u) << "node " << node.name();
  }
}

}  // namespace
}  // namespace lispcp
