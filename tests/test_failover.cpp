// Tests for the failure-injection and recovery machinery: the UDP Echo
// substrate in sim::Node, sim::FailureSchedule, core::LinkHealthMonitor
// detection timing, and the end-to-end FailoverController on the Fig. 1
// topology (traffic keeps flowing across a provider-link failure).
#include <gtest/gtest.h>

#include "net/echo.hpp"
#include "net/ports.hpp"
#include "scenario/experiment.hpp"
#include "sim/failure.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

// ---------------------------------------------------------------------------
// UDP Echo (RFC 862) in the base node.

struct EchoWorld {
  EchoWorld() : network(sim) {
    a = &network.make<sim::Node>("a");
    b = &network.make<sim::Node>("b");
    a->add_address(net::Ipv4Address(10, 0, 0, 1));
    b->add_address(net::Ipv4Address(10, 0, 0, 2));
    sim::LinkConfig cfg;
    cfg.delay = sim::SimDuration::millis(5);
    link = &network.connect(a->id(), b->id(), cfg);
    network.add_host_route(a->id(), b->address(), b->id());
    network.add_host_route(b->id(), a->address(), a->id());
  }

  void ping(std::uint64_t nonce) {
    a->send(net::Packet::udp(
        a->address(), b->address(), net::ports::kEcho, net::ports::kEcho,
        std::make_shared<net::EchoPayload>(nonce, /*is_reply=*/false)));
  }

  sim::Simulator sim;
  sim::Network network;
  sim::Node* a = nullptr;
  sim::Node* b = nullptr;
  sim::Link* link = nullptr;
};

TEST(Echo, RequestIsAnsweredByAnyNode) {
  EchoWorld world;
  std::vector<std::uint64_t> replies;
  world.a->set_echo_reply_handler(
      [&](net::Ipv4Address from, std::uint64_t nonce) {
        EXPECT_EQ(from, world.b->address());
        replies.push_back(nonce);
      });
  world.ping(7);
  world.ping(8);
  world.sim.run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], 7u);
  EXPECT_EQ(replies[1], 8u);
  EXPECT_EQ(world.a->unexpected_deliveries(), 0u);
  EXPECT_EQ(world.b->unexpected_deliveries(), 0u);
}

TEST(Echo, ReplyTakesOneRoundTrip) {
  EchoWorld world;
  sim::SimTime replied_at;
  world.a->set_echo_reply_handler(
      [&](net::Ipv4Address, std::uint64_t) { replied_at = world.sim.now(); });
  world.ping(1);
  world.sim.run();
  // 5 ms propagation each way plus sub-microsecond serialization.
  EXPECT_GE(replied_at.ms(), 10.0);
  EXPECT_LT(replied_at.ms(), 10.01);
}

TEST(Echo, ReplyWithoutHandlerIsNotUnexpected) {
  EchoWorld world;  // no handler installed on a
  world.ping(1);
  world.sim.run();
  EXPECT_EQ(world.a->unexpected_deliveries(), 0u)
      << "an unsolicited echo reply is consumed silently";
}

TEST(Echo, RoundTripWireFormat) {
  const net::EchoPayload original(0xABCDEF, true);
  net::ByteWriter w;
  original.serialize(w);
  EXPECT_EQ(w.size(), original.wire_size());
  net::ByteReader r(w.view());
  auto parsed = net::EchoPayload::parse_wire(r);
  EXPECT_EQ(parsed->nonce(), 0xABCDEFu);
  EXPECT_TRUE(parsed->is_reply());
}

// ---------------------------------------------------------------------------
// FailureSchedule.

TEST(FailureSchedule, LinkOutageDownAndUp) {
  EchoWorld world;
  sim::FailureSchedule failures(world.network);
  failures.link_outage(*world.link, sim::SimTime::from_ns(1'000'000'000),
                       sim::SimDuration::seconds(2));
  EXPECT_TRUE(world.link->is_up());
  world.sim.run_until(sim::SimTime::from_ns(1'500'000'000));
  EXPECT_FALSE(world.link->is_up());
  world.sim.run_until(sim::SimTime::from_ns(3'500'000'000));
  EXPECT_TRUE(world.link->is_up());
  EXPECT_EQ(failures.outages_injected(), 1u);
  EXPECT_EQ(failures.repairs_injected(), 1u);
}

TEST(FailureSchedule, PermanentOutageNeverRepairs) {
  EchoWorld world;
  sim::FailureSchedule failures(world.network);
  failures.link_outage(*world.link, sim::SimTime::from_ns(1000));
  world.sim.run();
  EXPECT_FALSE(world.link->is_up());
  EXPECT_EQ(failures.repairs_injected(), 0u);
}

TEST(FailureSchedule, DownedLinkDropsPackets) {
  EchoWorld world;
  sim::FailureSchedule failures(world.network);
  failures.link_outage(*world.link, sim::SimTime::from_ns(0));
  bool replied = false;
  world.a->set_echo_reply_handler(
      [&](net::Ipv4Address, std::uint64_t) { replied = true; });
  world.sim.run_until(sim::SimTime::from_ns(1));
  world.ping(1);
  world.sim.run();
  EXPECT_FALSE(replied);
  EXPECT_EQ(world.network.counters().drops_link_down, 1u);
}

TEST(FailureSchedule, NodeOutageFailsEveryIncidentLink) {
  sim::Simulator sim;
  sim::Network network(sim);
  auto& hub = network.make<sim::Node>("hub");
  auto& s1 = network.make<sim::Node>("s1");
  auto& s2 = network.make<sim::Node>("s2");
  auto& l1 = network.connect(hub.id(), s1.id());
  auto& l2 = network.connect(hub.id(), s2.id());
  sim::FailureSchedule failures(network);
  failures.node_outage(hub.id(), sim::SimTime::from_ns(100),
                       sim::SimDuration::seconds(1));
  sim.run_until(sim::SimTime::from_ns(200));
  EXPECT_FALSE(l1.is_up());
  EXPECT_FALSE(l2.is_up());
  sim.run();
  EXPECT_TRUE(l1.is_up());
  EXPECT_TRUE(l2.is_up());
}

TEST(FailureSchedule, RandomOutagesAreDeterministicAndBounded) {
  EchoWorld world_a;
  sim::FailureSchedule fa(world_a.network);
  fa.random_outages(*world_a.link, sim::SimTime::from_ns(60'000'000'000),
                    sim::SimDuration::seconds(5), sim::SimDuration::seconds(1),
                    sim::Rng(99));
  world_a.sim.run();
  EXPECT_GT(fa.outages_injected(), 0u);

  EchoWorld world_b;
  sim::FailureSchedule fb(world_b.network);
  fb.random_outages(*world_b.link, sim::SimTime::from_ns(60'000'000'000),
                    sim::SimDuration::seconds(5), sim::SimDuration::seconds(1),
                    sim::Rng(99));
  world_b.sim.run();
  EXPECT_EQ(fa.outages_injected(), fb.outages_injected());
  EXPECT_EQ(fa.repairs_injected(), fb.repairs_injected());
  // Every outage completed by the process is repaired (the process only
  // stops while the link is up).
  EXPECT_EQ(fa.outages_injected(), fa.repairs_injected());
  EXPECT_TRUE(world_a.link->is_up());
}

TEST(FailureSchedule, RejectsNonPositiveMeans) {
  EchoWorld world;
  sim::FailureSchedule failures(world.network);
  EXPECT_THROW(
      failures.random_outages(*world.link, sim::SimTime::from_ns(1000),
                              sim::SimDuration{}, sim::SimDuration::seconds(1),
                              sim::Rng(1)),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LinkHealthMonitor + FailoverController end-to-end on the Fig. 1 topology.

ExperimentConfig failover_config() {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(ControlPlaneKind::kPce);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = irc::TePolicy::kRoundRobin;
  config.spec.seed = 17;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

core::LinkHealthConfig fast_health() {
  core::LinkHealthConfig health;
  health.hello_interval = sim::SimDuration::millis(300);
  health.reply_timeout = sim::SimDuration::millis(200);
  health.down_threshold = 3;
  return health;
}

TEST(Failover, MonitorDetectsDownWithinBoundAndRecovers) {
  Experiment experiment(failover_config());
  auto& internet = experiment.internet();
  auto& controller = internet.arm_failover(0, fast_health());

  auto& dom0 = internet.domain(0);
  sim::FailureSchedule failures(internet.network());
  const auto fail_at = sim::SimTime::from_ns(10'000'000'000);
  failures.link_outage(*dom0.provider_links[0], fail_at,
                       sim::SimDuration::seconds(10));

  experiment.run();

  const auto& monitor = controller.monitor(0);
  EXPECT_EQ(monitor.stats().down_transitions, 1u);
  EXPECT_EQ(monitor.stats().up_transitions, 1u);
  EXPECT_TRUE(monitor.link_up()) << "link repaired at t=20s";
  EXPECT_EQ(controller.stats().failovers, 1u);
  EXPECT_EQ(controller.stats().recoveries, 1u);
  EXPECT_GT(controller.stats().flows_repushed, 0u);

  // Detection bound: hello_interval * threshold + timeout (+1 hello slack).
  const auto bound = sim::SimDuration::millis(300 * 3 + 200 + 300);
  // The monitor's last transition is the *recovery*; the failover happened
  // within [fail_at, fail_at + bound].  Recovery detection is bounded by
  // one hello interval + RTT after the repair.
  EXPECT_LE((monitor.last_transition_at() -
             (fail_at + sim::SimDuration::seconds(10))).ms(),
            bound.ms());
}

TEST(Failover, TrafficSurvivesProviderFailureWithController) {
  Experiment experiment(failover_config());
  auto& internet = experiment.internet();
  internet.arm_failover(0, fast_health());

  sim::FailureSchedule failures(internet.network());
  // Permanent failure of provider 0 mid-run; provider 1 must carry the rest.
  failures.link_outage(*internet.domain(0).provider_links[0],
                       sim::SimTime::from_ns(10'000'000'000));

  const auto summary = experiment.run();
  EXPECT_GT(summary.sessions, 100u);
  // The blackout window is one detection bound (~1.1 s); sessions started
  // inside it may fail, everything after must succeed.  Allow the window's
  // worth of casualties, not more.
  EXPECT_LT(summary.dns_failures + summary.connect_failures,
            summary.sessions / 10)
      << "failover must confine losses to the detection window";
  EXPECT_GT(summary.established, summary.sessions * 8 / 10);
}

TEST(Failover, WithoutControllerAPermanentFailureIsAnOutage) {
  Experiment experiment(failover_config());
  auto& internet = experiment.internet();
  // No controller armed.
  sim::FailureSchedule failures(internet.network());
  failures.link_outage(*internet.domain(0).provider_links[0],
                       sim::SimTime::from_ns(10'000'000'000));

  const auto summary = experiment.run();
  // Domain 0's egress default and half of its ingress RLOC choices dangle
  // on the dead link: a large share of sessions never establishes (SYNs and
  // DNS queries blackhole), which is precisely what the controller
  // prevents.
  EXPECT_LT(summary.established, summary.sessions * 2 / 3);
  EXPECT_GT(experiment.internet().network().counters().drops_link_down, 100u);
}

TEST(Failover, ControllerReportsUsableLinks) {
  Experiment experiment(failover_config());
  auto& internet = experiment.internet();
  auto& controller = internet.arm_failover(0, fast_health());
  EXPECT_TRUE(controller.has_usable_link());
  EXPECT_EQ(controller.monitor_count(), 2u);

  sim::FailureSchedule failures(internet.network());
  failures.link_outage(*internet.domain(0).provider_links[0],
                       sim::SimTime::from_ns(5'000'000'000));
  failures.link_outage(*internet.domain(0).provider_links[1],
                       sim::SimTime::from_ns(5'000'000'000));
  experiment.run();
  EXPECT_FALSE(controller.has_usable_link());
  EXPECT_EQ(controller.stats().failovers, 2u);
}

TEST(Failover, ArmFailoverRequiresPceControlPlane) {
  ExperimentConfig config = failover_config();
  config.spec = InternetSpec::preset(ControlPlaneKind::kAltDrop);
  config.spec.domains = 3;
  Experiment experiment(config);
  EXPECT_THROW(experiment.internet().arm_failover(0), std::logic_error);
}

TEST(Failover, MonitorConfigValidation) {
  Experiment experiment(failover_config());
  core::LinkHealthConfig bad = fast_health();
  bad.down_threshold = 0;
  EXPECT_THROW(experiment.internet().arm_failover(0, bad),
               std::invalid_argument);
  bad = fast_health();
  bad.reply_timeout = bad.hello_interval;  // would allow two in flight
  EXPECT_THROW(experiment.internet().arm_failover(0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace lispcp
