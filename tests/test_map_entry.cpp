#include <gtest/gtest.h>

#include "lisp/control.hpp"
#include "lisp/map_entry.hpp"

namespace lispcp::lisp {
namespace {

MapEntry two_rloc_entry() {
  MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
  entry.rlocs = {Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 100, true},
                 Rloc{net::Ipv4Address(10, 0, 1, 2), 2, 100, true}};
  return entry;
}

TEST(MapEntry, SelectPrefersLowestPriority) {
  const auto entry = two_rloc_entry();
  for (std::uint64_t h = 0; h < 64; ++h) {
    auto chosen = entry.select_rloc(h);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(chosen->address, net::Ipv4Address(10, 0, 1, 1));
  }
}

TEST(MapEntry, FailoverToBackupWhenPrimaryDown) {
  auto entry = two_rloc_entry();
  entry.rlocs[0].reachable = false;
  auto chosen = entry.select_rloc(5);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->address, net::Ipv4Address(10, 0, 1, 2));
}

TEST(MapEntry, NoReachableLocatorReturnsNullopt) {
  auto entry = two_rloc_entry();
  entry.rlocs[0].reachable = false;
  entry.rlocs[1].reachable = false;
  EXPECT_FALSE(entry.select_rloc(1).has_value());
}

TEST(MapEntry, EqualPriorityWeightsSplitProportionally) {
  MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
  entry.rlocs = {Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 75, true},
                 Rloc{net::Ipv4Address(10, 0, 1, 2), 1, 25, true}};
  int first = 0;
  const int n = 10'000;
  for (int h = 0; h < n; ++h) {
    auto chosen = entry.select_rloc(static_cast<std::uint64_t>(h) * 2654435761u);
    ASSERT_TRUE(chosen.has_value());
    if (chosen->address == net::Ipv4Address(10, 0, 1, 1)) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.75, 0.03);
}

TEST(MapEntry, SelectionIsDeterministicPerHash) {
  const auto entry = two_rloc_entry();
  for (std::uint64_t h : {0ull, 17ull, 123456789ull}) {
    EXPECT_EQ(entry.select_rloc(h)->address, entry.select_rloc(h)->address);
  }
}

TEST(MapEntry, ZeroWeightFallsBackToFirstReachable) {
  MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix::from_string("100.64.1.0/24");
  entry.rlocs = {Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 0, true},
                 Rloc{net::Ipv4Address(10, 0, 1, 2), 1, 0, true}};
  auto chosen = entry.select_rloc(99);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->address, net::Ipv4Address(10, 0, 1, 1));
}

TEST(MapEntry, LocatorStatusBits) {
  auto entry = two_rloc_entry();
  EXPECT_EQ(entry.locator_status_bits(), 0b11u);
  entry.rlocs[0].reachable = false;
  EXPECT_EQ(entry.locator_status_bits(), 0b10u);
}

TEST(MapEntry, ToStringMentionsAllParts) {
  const auto text = two_rloc_entry().to_string();
  EXPECT_NE(text.find("100.64.1.0/24"), std::string::npos);
  EXPECT_NE(text.find("10.0.1.1"), std::string::npos);
  EXPECT_NE(text.find("ttl=900s"), std::string::npos);
}

TEST(FlowHash, DependsOnEveryField) {
  const auto base = flow_hash(net::Ipv4Address(1, 1, 1, 1),
                              net::Ipv4Address(2, 2, 2, 2), 10, 20);
  EXPECT_NE(base, flow_hash(net::Ipv4Address(1, 1, 1, 2),
                            net::Ipv4Address(2, 2, 2, 2), 10, 20));
  EXPECT_NE(base, flow_hash(net::Ipv4Address(1, 1, 1, 1),
                            net::Ipv4Address(2, 2, 2, 3), 10, 20));
  EXPECT_NE(base, flow_hash(net::Ipv4Address(1, 1, 1, 1),
                            net::Ipv4Address(2, 2, 2, 2), 11, 20));
  EXPECT_NE(base, flow_hash(net::Ipv4Address(1, 1, 1, 1),
                            net::Ipv4Address(2, 2, 2, 2), 10, 21));
  EXPECT_EQ(base, flow_hash(net::Ipv4Address(1, 1, 1, 1),
                            net::Ipv4Address(2, 2, 2, 2), 10, 20));
}

TEST(ControlWire, MapEntryRoundTrip) {
  auto entry = two_rloc_entry();
  entry.version = 77;
  entry.rlocs[1].reachable = false;
  net::ByteWriter w;
  serialize_map_entry(w, entry);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), map_entry_wire_size(entry));
  net::ByteReader r(bytes);
  EXPECT_EQ(parse_map_entry(r), entry);
}

TEST(ControlWire, MapRequestRoundTripWithPath) {
  MapRequest request(0xDEADBEEFCAFEull, net::Ipv4Address(100, 64, 9, 9),
                     net::Ipv4Address(10, 0, 0, 1), true);
  auto with_hops = request.with_hop(net::Ipv4Address(192, 0, 8, 1))
                       ->with_hop(net::Ipv4Address(192, 0, 8, 2));
  net::ByteWriter w;
  with_hops->serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), with_hops->wire_size());
  net::ByteReader r(bytes);
  auto parsed = MapRequest::parse_wire(r);
  EXPECT_EQ(parsed->nonce(), 0xDEADBEEFCAFEull);
  EXPECT_EQ(parsed->target_eid(), net::Ipv4Address(100, 64, 9, 9));
  EXPECT_TRUE(parsed->record_route());
  ASSERT_EQ(parsed->path().size(), 2u);
  EXPECT_EQ(parsed->path()[1], net::Ipv4Address(192, 0, 8, 2));
}

TEST(ControlWire, MapReplyRoundTripAndPathPop) {
  MapReply reply(42, two_rloc_entry(),
                 {net::Ipv4Address(192, 0, 8, 1), net::Ipv4Address(192, 0, 8, 2)});
  net::ByteWriter w;
  reply.serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), reply.wire_size());
  net::ByteReader r(bytes);
  auto parsed = MapReply::parse_wire(r);
  EXPECT_EQ(parsed->nonce(), 42u);
  EXPECT_EQ(parsed->entry(), two_rloc_entry());
  ASSERT_EQ(parsed->path().size(), 2u);

  auto popped = parsed->with_path_popped();
  ASSERT_EQ(popped->path().size(), 1u);
  EXPECT_EQ(popped->path()[0], net::Ipv4Address(192, 0, 8, 1));
  auto emptied = popped->with_path_popped()->with_path_popped();
  EXPECT_TRUE(emptied->path().empty());  // popping empty stays empty
}

TEST(ControlWire, MapPushRoundTrip) {
  MapPush push({two_rloc_entry(), two_rloc_entry()}, 9);
  net::ByteWriter w;
  push.serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), push.wire_size());
  net::ByteReader r(bytes);
  auto parsed = MapPush::parse_wire(r);
  EXPECT_EQ(parsed->generation(), 9u);
  ASSERT_EQ(parsed->entries().size(), 2u);
  EXPECT_EQ(parsed->entries()[0], two_rloc_entry());
}

TEST(ControlWire, FlowMappingPushRoundTrip) {
  FlowMapping tuple;
  tuple.source_eid = net::Ipv4Address(100, 64, 0, 10);
  tuple.destination_eid = net::Ipv4Address(100, 64, 1, 10);
  tuple.source_rloc = net::Ipv4Address(10, 0, 0, 2);
  tuple.destination_rloc = net::Ipv4Address(10, 0, 1, 1);
  tuple.version = 3;
  FlowMappingPush push({tuple});
  net::ByteWriter w;
  push.serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), push.wire_size());
  net::ByteReader r(bytes);
  auto parsed = FlowMappingPush::parse_wire(r);
  ASSERT_EQ(parsed->mappings().size(), 1u);
  EXPECT_EQ(parsed->mappings()[0], tuple);
}

}  // namespace
}  // namespace lispcp::lisp
