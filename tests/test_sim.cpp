// Simulator core: time arithmetic, RNG distributions, event queue ordering,
// cancellation, run_until semantics.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace lispcp::sim {
namespace {

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimDuration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(SimDuration::seconds(2).ms(), 2000.0);
  EXPECT_EQ(SimDuration::micros(5).us(), 5.0);
  EXPECT_EQ(SimDuration::millis_f(1.5).ns(), 1'500'000);

  const SimTime t = SimTime::zero() + SimDuration::millis(10);
  EXPECT_EQ(t.ms(), 10.0);
  EXPECT_EQ((t - SimTime::zero()).ms(), 10.0);
  EXPECT_EQ((t + SimDuration::millis(5)) - t, SimDuration::millis(5));
  EXPECT_LT(SimTime::zero(), t);
}

TEST(SimTime, NegativeDurationsAndRatios) {
  const auto d = SimDuration::millis(2) - SimDuration::millis(5);
  EXPECT_EQ(d.ms(), -3.0);
  EXPECT_EQ(-d, SimDuration::millis(3));
  EXPECT_DOUBLE_EQ(SimDuration::millis(10) / SimDuration::millis(4), 2.5);
  EXPECT_EQ(SimDuration::millis(3) * 4, SimDuration::millis(12));
  EXPECT_EQ(SimDuration::millis(12) / 4, SimDuration::millis(3));
}

TEST(SimTime, Formatting) {
  EXPECT_EQ(SimDuration::nanos(500).to_string(), "500ns");
  EXPECT_EQ(SimDuration::micros(12).to_string(), "12.00us");
  EXPECT_EQ(SimDuration::millis(3).to_string(), "3.000ms");
  EXPECT_EQ(SimDuration::seconds(2).to_string(), "2.0000s");
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng a(7);
  Rng fork1 = a.fork();
  // Draw extra values from the parent; the fork must be unaffected compared
  // to reconstructing it the same way.
  Rng b(7);
  Rng fork2 = b.fork();
  (void)a.uniform();
  (void)a.uniform();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fork1.uniform(), fork2.uniform());
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.02);
  EXPECT_NEAR(sum / n, 0.02, 0.0005);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.2, 3.0), 3.0);
  }
}

TEST(Zipf, PmfMatchesDefinition) {
  ZipfDistribution zipf(4, 1.0);
  // Weights 1, 1/2, 1/3, 1/4; total 25/12.
  const double total = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  EXPECT_NEAR(zipf.pmf(0), 1.0 / total, 1e-12);
  EXPECT_NEAR(zipf.pmf(3), 0.25 / total, 1e-12);
  EXPECT_EQ(zipf.pmf(4), 0.0);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfDistribution zipf(10, 0.9);
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01) << k;
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution zipf(5, 0.0);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_NEAR(zipf.pmf(k), 0.2, 1e-12);
}

TEST(Zipf, InvalidArgsThrow) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -0.1), std::invalid_argument);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(300), [&] { order.push_back(3); });
  q.schedule(SimTime::from_ns(100), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ns(200), [&] { order.push_back(2); });
  EventQueue::Fired fired;
  while (q.pop(fired)) fired.action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::from_ns(50), [&order, i] { order.push_back(i); });
  }
  EventQueue::Fired fired;
  while (q.pop(fired)) fired.action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired_count = 0;
  auto handle = q.schedule(SimTime::from_ns(10), [&] { ++fired_count; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // double cancel is a no-op
  EventQueue::Fired fired;
  EXPECT_FALSE(q.pop(fired));
  EXPECT_EQ(fired_count, 0);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto first = q.schedule(SimTime::from_ns(10), [] {});
  q.schedule(SimTime::from_ns(20), [] {});
  first.cancel();
  EXPECT_EQ(q.next_time(), SimTime::from_ns(20));
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen;
  sim.schedule(SimDuration::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::zero() + SimDuration::millis(5));
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulator, ChainedEventsKeepRelativeDelays) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(SimDuration::millis(1), [&] {
    times.push_back(sim.now().ms());
    sim.schedule(SimDuration::millis(2), [&] { times.push_back(sim.now().ms()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, RunUntilLeavesFutureEventsQueued) {
  Simulator sim;
  int fired_count = 0;
  sim.schedule(SimDuration::millis(1), [&] { ++fired_count; });
  sim.schedule(SimDuration::millis(10), [&] { ++fired_count; });
  sim.run_until(SimTime::zero() + SimDuration::millis(5));
  EXPECT_EQ(fired_count, 1);
  EXPECT_EQ(sim.now(), SimTime::zero() + SimDuration::millis(5));
  sim.run();
  EXPECT_EQ(fired_count, 2);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimDuration::millis(-1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(SimDuration::millis(2), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::zero(), [] {}), std::invalid_argument);
}

TEST(Simulator, EventBudgetGuardsRunaway) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.schedule(SimDuration::nanos(1), loop); };
  sim.schedule(SimDuration::nanos(1), loop);
  EXPECT_THROW(sim.run(/*max_events=*/1000), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Daemon events: periodic background maintenance (IRC refresh, RLOC probe
// cycles, NERD push timers, PCEP keepalives) fires in time order but must
// never keep an unbounded run() alive.  Regression tests for the class of
// hang where a self-rescheduling maintenance loop spins run() forever.

TEST(Daemon, SelfReschedulingDaemonDoesNotKeepRunAlive) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> maintenance = [&] {
    ++ticks;
    sim.schedule_daemon(SimDuration::seconds(1), maintenance);
  };
  sim.schedule_daemon(SimDuration::seconds(1), maintenance);
  sim.schedule(SimDuration::millis(3500), [] {});  // the only foreground work
  sim.run();  // must terminate despite the endless maintenance loop
  EXPECT_EQ(ticks, 3) << "daemons up to the last foreground instant fire";
  EXPECT_EQ(sim.now().ms(), 3500.0);
}

TEST(Daemon, PureDaemonQueueRunsZeroEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_daemon(SimDuration::millis(1), [&] { fired = true; });
  sim.run();
  EXPECT_FALSE(fired) << "nothing foreground: run() returns immediately";
  EXPECT_FALSE(sim.queue().has_foreground());
  EXPECT_FALSE(sim.queue().empty()) << "the daemon stays queued for resume";
}

TEST(Daemon, DaemonsInterleaveInTimeOrderWithForeground) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimDuration::millis(10), [&] { order.push_back(1); });
  sim.schedule_daemon(SimDuration::millis(5), [&] { order.push_back(0); });
  sim.schedule(SimDuration::millis(20), [&] { order.push_back(3); });
  sim.schedule_daemon(SimDuration::millis(15), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Daemon, RunUntilFiresDaemonsRegardless) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> maintenance = [&] {
    ++ticks;
    sim.schedule_daemon(SimDuration::seconds(1), maintenance);
  };
  sim.schedule_daemon(SimDuration::seconds(1), maintenance);
  sim.run_until(SimTime::from_ns(5'500'000'000));
  EXPECT_EQ(ticks, 5) << "time-bounded runs drive maintenance as before";
}

TEST(Daemon, CancellingLastForegroundStopsRun) {
  Simulator sim;
  sim.schedule_daemon(SimDuration::millis(1), [] {});
  auto handle = sim.schedule(SimDuration::seconds(10), [] {});
  EXPECT_TRUE(sim.queue().has_foreground());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(sim.queue().has_foreground())
      << "cancel must give back the foreground count immediately";
  sim.run();  // terminates without firing anything
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Daemon, CancelledDaemonDoesNotFire) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule_daemon(SimDuration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(handle.cancel());
  sim.schedule(SimDuration::millis(2), [] {});
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Daemon, ForegroundSpawnedByDaemonExtendsRun) {
  Simulator sim;
  bool spawned_ran = false;
  sim.schedule_daemon(SimDuration::millis(1), [&] {
    // A daemon may create real work (e.g. a probe packet); that work then
    // keeps run() alive until it completes.
    sim.schedule(SimDuration::millis(5), [&] { spawned_ran = true; });
  });
  sim.schedule(SimDuration::millis(2), [] {});  // lets the daemon fire first
  sim.run();
  EXPECT_TRUE(spawned_ran);
  EXPECT_EQ(sim.now().ms(), 6.0);
}

TEST(Daemon, DoubleCancelDecrementsOnce) {
  Simulator sim;
  auto fg = sim.schedule(SimDuration::millis(1), [] {});
  auto fg2 = sim.schedule(SimDuration::millis(1), [] {});
  EXPECT_TRUE(fg.cancel());
  EXPECT_FALSE(fg.cancel());  // second cancel is a no-op
  EXPECT_TRUE(sim.queue().has_foreground()) << "fg2 still pending";
  EXPECT_TRUE(fg2.cancel());
  EXPECT_FALSE(sim.queue().has_foreground());
}

TEST(Daemon, NegativeDaemonDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_daemon(SimDuration::nanos(-1), [] {}),
               std::invalid_argument);
}

TEST(Daemon, FiredEventCancelIsNoOp) {
  Simulator sim;
  auto handle = sim.schedule(SimDuration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(handle.cancel()) << "firing consumed the event";
  EXPECT_FALSE(sim.queue().has_foreground());
}

}  // namespace
}  // namespace lispcp::sim
