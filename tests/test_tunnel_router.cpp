// TunnelRouter unit tests over a hand-built miniature LISP path:
//   src-host -- ITR -- core -- ETR -- dst-host
// exercising encapsulation, miss policies, flow tuples (one-way tunnels),
// decapsulation, gleaning and Map-Request answering.
#include <gtest/gtest.h>

#include "lisp/tunnel_router.hpp"
#include "net/ports.hpp"

namespace lispcp::lisp {
namespace {

const net::Ipv4Prefix kEidSpace = net::Ipv4Prefix::from_string("100.64.0.0/10");
const net::Ipv4Prefix kSrcEids = net::Ipv4Prefix::from_string("100.64.0.0/24");
const net::Ipv4Prefix kDstEids = net::Ipv4Prefix::from_string("100.64.1.0/24");
const net::Ipv4Address kSrcHost(100, 64, 0, 10);
const net::Ipv4Address kDstHost(100, 64, 1, 10);
const net::Ipv4Address kItrRloc(10, 0, 0, 1);
const net::Ipv4Address kItrRloc2(10, 0, 0, 2);
const net::Ipv4Address kEtrRloc(10, 0, 1, 1);

class Endpoint : public sim::Node {
 public:
  Endpoint(sim::Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }
  void deliver(net::Packet packet) override { received.push_back(std::move(packet)); }
  std::vector<net::Packet> received;
};

MapEntry dst_mapping() {
  MapEntry entry;
  entry.eid_prefix = kDstEids;
  entry.rlocs = {Rloc{kEtrRloc, 1, 100, true}};
  entry.ttl_seconds = 900;
  return entry;
}

class TunnelRouterTest : public ::testing::Test {
 protected:
  explicit TunnelRouterTest(XtrConfig itr_extra = {}) : network_(sim_) {
    src_host_ = &network_.make<Endpoint>("src", kSrcHost);
    dst_host_ = &network_.make<Endpoint>("dst", kDstHost);
    core_ = &network_.make<sim::Node>("core");

    XtrConfig itr_cfg = itr_extra;
    itr_cfg.itr_role = true;
    itr_cfg.etr_role = true;
    itr_cfg.local_eid_prefixes = {kSrcEids};
    itr_cfg.eid_space = {kEidSpace};
    itr_ = &network_.make<TunnelRouter>("itr", kItrRloc, itr_cfg);

    XtrConfig etr_cfg;
    etr_cfg.local_eid_prefixes = {kDstEids};
    etr_cfg.eid_space = {kEidSpace};
    etr_cfg.site_mappings = {dst_mapping()};
    etr_ = &network_.make<TunnelRouter>("etr", kEtrRloc, etr_cfg);

    sim::LinkConfig lan;
    lan.delay = sim::SimDuration::micros(100);
    sim::LinkConfig wan;
    wan.delay = sim::SimDuration::millis(10);

    network_.connect(src_host_->id(), itr_->id(), lan);
    network_.connect(itr_->id(), core_->id(), wan);
    network_.connect(core_->id(), etr_->id(), wan);
    network_.connect(etr_->id(), dst_host_->id(), lan);

    network_.add_route(src_host_->id(), net::Ipv4Prefix(), itr_->id());
    network_.add_route(itr_->id(), net::Ipv4Prefix(), core_->id());
    network_.add_host_route(core_->id(), kEtrRloc, etr_->id());
    network_.add_host_route(core_->id(), kItrRloc, itr_->id());
    network_.add_route(etr_->id(), kDstEids, dst_host_->id());
    network_.add_route(etr_->id(), net::Ipv4Prefix(), core_->id());
    network_.add_route(dst_host_->id(), net::Ipv4Prefix(), etr_->id());
    network_.add_route(itr_->id(), kSrcEids, src_host_->id());
  }

  net::Packet data_packet(std::size_t bytes = 100) {
    net::TcpHeader tcp;
    tcp.src_port = 1234;
    tcp.dst_port = 80;
    return net::Packet::tcp(kSrcHost, kDstHost, tcp, bytes);
  }

  sim::Simulator sim_;
  sim::Network network_;
  Endpoint* src_host_ = nullptr;
  Endpoint* dst_host_ = nullptr;
  sim::Node* core_ = nullptr;
  TunnelRouter* itr_ = nullptr;
  TunnelRouter* etr_ = nullptr;
};

TEST_F(TunnelRouterTest, EncapDecapDeliversInnerPacket) {
  itr_->install_mapping(dst_mapping());
  src_host_->send(data_packet());
  sim_.run();
  ASSERT_EQ(dst_host_->received.size(), 1u);
  const auto& delivered = dst_host_->received[0];
  EXPECT_EQ(delivered.outer_ip().src, kSrcHost);
  EXPECT_EQ(delivered.lisp(), nullptr);  // fully decapsulated
  EXPECT_EQ(itr_->stats().encapsulated, 1u);
  EXPECT_EQ(etr_->stats().decapsulated, 1u);
  EXPECT_EQ(itr_->cache().stats().hits, 1u);
}

TEST_F(TunnelRouterTest, RlocSpaceTrafficForwardsNatively) {
  // A packet to the ETR's RLOC itself is not EID traffic: no encapsulation.
  src_host_->send(net::Packet::udp(kSrcHost, kEtrRloc, 1000,
                                   net::ports::kLispControl,
                                   std::make_shared<net::RawPayload>(10)));
  sim_.run();
  EXPECT_EQ(itr_->stats().data_seen, 0u);
}

TEST_F(TunnelRouterTest, LocalEidTrafficNotIntercepted) {
  // Destination inside the ITR's own site: plain forwarding.
  net::TcpHeader tcp;
  auto p = net::Packet::tcp(kSrcHost, net::Ipv4Address(100, 64, 0, 20), tcp, 10);
  src_host_->send(std::move(p));
  sim_.run();
  EXPECT_EQ(itr_->stats().data_seen, 0u);
  EXPECT_EQ(itr_->stats().encapsulated, 0u);
}

TEST_F(TunnelRouterTest, MissWithDropPolicyDropsAndCounts) {
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_TRUE(dst_host_->received.empty());
  EXPECT_EQ(itr_->stats().miss_events, 1u);
  EXPECT_EQ(itr_->stats().miss_dropped, 1u);
  EXPECT_EQ(network_.counters().drops_mapping_miss, 1u);
}

TEST_F(TunnelRouterTest, PushResolvesSubsequentPackets) {
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_TRUE(dst_host_->received.empty());
  itr_->install_mapping(dst_mapping());
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(dst_host_->received.size(), 1u);
}

TEST_F(TunnelRouterTest, FlowTupleOverridesOuterSource) {
  // Step 7b: the tuple carries RLOC_S = a *different* local RLOC, realising
  // the paper's independent one-way tunnels (claim iii).
  FlowMapping tuple;
  tuple.source_eid = kSrcHost;
  tuple.destination_eid = kDstHost;
  tuple.source_rloc = kItrRloc2;  // not this ITR's own address
  tuple.destination_rloc = kEtrRloc;
  itr_->install_flow_mapping(tuple);

  src_host_->send(data_packet());
  sim_.run();
  ASSERT_EQ(dst_host_->received.size(), 1u);
  EXPECT_EQ(itr_->stats().flow_tuple_used, 1u);
  // The ETR gleaned the reverse mapping with RLOC_S = the tuple's source.
  auto gleaned = etr_->cache().lookup(kSrcHost, sim_.now());
  ASSERT_TRUE(gleaned != nullptr);
  EXPECT_EQ(gleaned->rlocs[0].address, kItrRloc2);
}

TEST_F(TunnelRouterTest, FlowTupleTakesPrecedenceOverCache) {
  itr_->install_mapping(dst_mapping());  // would choose kEtrRloc with own src
  FlowMapping tuple;
  tuple.source_eid = kSrcHost;
  tuple.destination_eid = kDstHost;
  tuple.source_rloc = kItrRloc2;
  tuple.destination_rloc = kEtrRloc;
  itr_->install_flow_mapping(tuple);
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(itr_->stats().flow_tuple_used, 1u);
  EXPECT_EQ(itr_->cache().stats().hits, 0u);
}

TEST_F(TunnelRouterTest, StaleFlowTupleVersionIgnored) {
  FlowMapping v2;
  v2.source_eid = kSrcHost;
  v2.destination_eid = kDstHost;
  v2.source_rloc = kItrRloc;
  v2.destination_rloc = kEtrRloc;
  v2.version = 2;
  itr_->install_flow_mapping(v2);

  FlowMapping v1 = v2;
  v1.source_rloc = kItrRloc2;
  v1.version = 1;
  itr_->install_flow_mapping(v1);  // stale: must not overwrite

  const FlowMapping* current = itr_->find_flow_mapping(kSrcHost, kDstHost);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->source_rloc, kItrRloc);
  EXPECT_EQ(current->version, 2u);
}

TEST_F(TunnelRouterTest, EtrAnswersMapRequestDirectly) {
  // ALT-style: request arrives at the ETR, reply goes straight to the ITR.
  auto request = std::make_shared<MapRequest>(777, kDstHost, kItrRloc, false);
  itr_->send(net::Packet::udp(kItrRloc, kEtrRloc, net::ports::kLispControl,
                              net::ports::kLispControl, request));
  sim_.run();
  EXPECT_EQ(etr_->stats().map_requests_answered, 1u);
  EXPECT_EQ(itr_->stats().map_replies_received, 1u);
  // The mapping is now cached: data flows without further resolution.
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(dst_host_->received.size(), 1u);
}

TEST_F(TunnelRouterTest, GleaningEnablesReturnPathWithoutResolution) {
  itr_->install_mapping(dst_mapping());
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(etr_->stats().gleaned, 1u);

  // Return traffic: dst-host -> src-host encapsulates at the ETR (acting as
  // ITR for the reverse flow) using the gleaned entry, with no miss.
  net::TcpHeader tcp;
  tcp.src_port = 80;
  tcp.dst_port = 1234;
  dst_host_->send(net::Packet::tcp(kDstHost, kSrcHost, tcp, 50));
  sim_.run();
  ASSERT_EQ(src_host_->received.size(), 1u);
  EXPECT_EQ(etr_->stats().miss_events, 0u);
  EXPECT_EQ(etr_->stats().encapsulated, 1u);
}

TEST_F(TunnelRouterTest, ReverseHookReportsFirstPacketOnly) {
  int calls = 0;
  bool last_first = false;
  FlowMapping last_tuple;
  etr_->set_reverse_mapping_hook(
      [&](TunnelRouter&, const FlowMapping& reverse, bool first) {
        ++calls;
        last_first = first;
        last_tuple = reverse;
      });
  itr_->install_mapping(dst_mapping());
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(last_first);
  EXPECT_EQ(last_tuple.source_eid, kDstHost);       // return flow src
  EXPECT_EQ(last_tuple.destination_eid, kSrcHost);  // return flow dst
  EXPECT_EQ(last_tuple.destination_rloc, kItrRloc); // where to send it back

  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(last_first);
}

TEST_F(TunnelRouterTest, MisdeliveredTunnelCounted) {
  // Mapping pointing at the WRONG ETR (stale after a TE move): the ETR must
  // refuse to forward an inner destination outside its site.
  MapEntry wrong;
  wrong.eid_prefix = net::Ipv4Prefix::from_string("100.64.2.0/24");
  wrong.rlocs = {Rloc{kEtrRloc, 1, 100, true}};
  itr_->install_mapping(wrong);
  net::TcpHeader tcp;
  auto p = net::Packet::tcp(kSrcHost, net::Ipv4Address(100, 64, 2, 10), tcp, 10);
  src_host_->send(std::move(p));
  sim_.run();
  EXPECT_EQ(etr_->stats().not_local_after_decap, 1u);
}

TEST_F(TunnelRouterTest, AllRlocsDownFallsToMissPath) {
  auto mapping = dst_mapping();
  mapping.rlocs[0].reachable = false;
  itr_->install_mapping(mapping);
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_TRUE(dst_host_->received.empty());
  EXPECT_EQ(itr_->stats().miss_events, 1u);
}

// --- Queue palliative -------------------------------------------------------

class QueuePolicyTest : public TunnelRouterTest {
 protected:
  QueuePolicyTest()
      : TunnelRouterTest([] {
          XtrConfig cfg;
          cfg.miss_policy = MissPolicy::kQueue;
          cfg.queue_capacity_per_eid = 3;
          cfg.queue_timeout = sim::SimDuration::millis(500);
          return cfg;
        }()) {}
};

TEST_F(QueuePolicyTest, QueuedPacketsFlushOnPush) {
  src_host_->send(data_packet());
  src_host_->send(data_packet());
  // Stop short of the 500 ms queue timeout: the push must win the race.
  sim_.run_until(sim_.now() + sim::SimDuration::millis(50));
  EXPECT_TRUE(dst_host_->received.empty());
  EXPECT_EQ(itr_->stats().miss_queued, 2u);

  itr_->install_mapping(dst_mapping());
  sim_.run();
  EXPECT_EQ(dst_host_->received.size(), 2u);
  EXPECT_EQ(itr_->stats().queue_flushed, 2u);
  EXPECT_EQ(itr_->queue_delay().count(), 2u);
}

TEST_F(QueuePolicyTest, QueueOverflowDropsTail) {
  for (int i = 0; i < 5; ++i) src_host_->send(data_packet());
  sim_.run_until(sim_.now() + sim::SimDuration::millis(10));
  EXPECT_EQ(itr_->stats().miss_queued, 3u);
  EXPECT_EQ(itr_->stats().queue_overflow_drops, 2u);
}

TEST_F(QueuePolicyTest, QueueTimesOutWithoutResolution) {
  src_host_->send(data_packet());
  sim_.run();
  EXPECT_EQ(itr_->stats().queue_timeout_drops, 1u);
  EXPECT_TRUE(dst_host_->received.empty());
}

}  // namespace
}  // namespace lispcp::lisp
