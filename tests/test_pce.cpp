// PCE control-plane tests over the Fig. 1 topology: Step-by-step counters,
// tuple contents, claim (ii) timing, and the A1/A2/A3 ablation switches.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig pce_config() {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(ControlPlaneKind::kPce);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.seed = 11;
  config.traffic.sessions_per_second = 10;
  config.traffic.duration = sim::SimDuration::seconds(15);
  return config;
}

TEST(Pce, Step6TriggersOnlyAtDestinationPce) {
  Experiment experiment(pce_config());
  experiment.run();
  auto& internet = experiment.internet();
  // Domain 0 only originates sessions: its PCE never encapsulates replies
  // (its authoritative server answers nobody), but receives port-P messages.
  const auto& src_stats = internet.domain(0).pce->stats();
  EXPECT_EQ(src_stats.replies_encapsulated, 0u);
  EXPECT_GT(src_stats.port_p_received, 0u);
  EXPECT_EQ(src_stats.port_p_received, src_stats.replies_released);

  // Destination domains do Step 6 and never see port P.
  for (std::size_t d = 1; d < 3; ++d) {
    const auto& dst_stats = internet.domain(d).pce->stats();
    EXPECT_GT(dst_stats.replies_encapsulated, 0u) << d;
    EXPECT_EQ(dst_stats.port_p_received, 0u) << d;
  }
}

TEST(Pce, EveryResolutionConfiguresAFlow) {
  Experiment experiment(pce_config());
  const auto summary = experiment.run();
  const auto& stats = experiment.internet().domain(0).pce->stats();
  EXPECT_GT(stats.flows_configured, 0u);
  EXPECT_GT(stats.tuples_pushed, 0u);
  EXPECT_EQ(stats.uncorrelated_replies, 0u);
  EXPECT_EQ(summary.miss_drops, 0u);
}

TEST(Pce, TupleCarriesLocalIngressChoiceAsSourceRloc) {
  Experiment experiment(pce_config());
  experiment.run();
  auto& dom0 = experiment.internet().domain(0);
  // With the default least-loaded policy over two symmetric providers, the
  // engine spreads ingress choices over both RLOCs: both must appear as
  // RLOC_S in the ITRs' flow tables.
  std::set<std::uint32_t> source_rlocs;
  for (auto* xtr : dom0.xtrs) {
    EXPECT_GT(xtr->flow_table_size(), 0u);
  }
  for (auto* xtr : dom0.xtrs) {
    for (std::size_t h = 0; h < dom0.hosts.size(); ++h) {
      for (std::size_t d = 1; d < 3; ++d) {
        for (std::size_t p = 0; p < 2; ++p) {
          const auto* tuple = xtr->find_flow_mapping(
              dom0.hosts[h]->address(),
              experiment.internet().domain(d).hosts[p]->address());
          if (tuple != nullptr) source_rlocs.insert(tuple->source_rloc.value());
        }
      }
    }
  }
  EXPECT_GE(source_rlocs.size(), 2u);
  EXPECT_TRUE(source_rlocs.contains(dom0.xtrs[0]->rloc().value()));
  EXPECT_TRUE(source_rlocs.contains(dom0.xtrs[1]->rloc().value()));
}

TEST(Pce, PushAllItrsInstallsTupleEverywhere) {
  Experiment experiment(pce_config());
  experiment.run();
  auto& dom0 = experiment.internet().domain(0);
  // Both ITRs must have received pushes (paper Step 7b: "all ITRs").
  for (auto* xtr : dom0.xtrs) {
    EXPECT_GT(xtr->stats().flow_pushes_received, 0u);
  }
}

TEST(Pce, AblationA1PushOneLeavesOtherItrsEmpty) {
  auto config = pce_config();
  config.spec.pce_push_all_itrs = false;
  Experiment experiment(config);
  experiment.run();
  auto& dom0 = experiment.internet().domain(0);
  // Only the first ITR receives PCE pushes now.  (The second may still hold
  // reverse tuples multicast by its ETR role; count pushes, not table size.)
  EXPECT_GT(dom0.xtrs[0]->stats().flow_pushes_received, 0u);
  const auto& from_pce = experiment.internet().domain(0).pce->stats();
  EXPECT_EQ(from_pce.tuples_pushed, from_pce.flows_configured);
}

TEST(Pce, AblationA2NoSnoopMeansNoMappingsAndDrops) {
  auto config = pce_config();
  config.spec.pce_snoop = false;
  // SYN retries back off 3/6/12/24/48 s before a connection is abandoned;
  // leave enough drain for the failures to be accounted.
  config.drain = sim::SimDuration::seconds(120);
  Experiment experiment(config);
  const auto summary = experiment.run();
  const auto& stats = experiment.internet().domain(0).pce->stats();
  EXPECT_EQ(stats.replies_encapsulated, 0u);
  EXPECT_EQ(stats.port_p_received, 0u);
  // Without the snooped mapping distribution every packet misses, and with
  // no on-demand resolution path either, connections fail outright.
  EXPECT_GT(summary.miss_drops, 0u);
  EXPECT_GT(summary.connect_failures, 0u);
  EXPECT_EQ(summary.established, 0u);
}

TEST(Pce, AblationA3NoMulticastRisksReversePathDrops) {
  auto with = pce_config();
  auto without = pce_config();
  without.spec.multicast_reverse = false;
  const auto with_summary = Experiment(with).run();
  const auto without_summary = Experiment(without).run();
  EXPECT_EQ(with_summary.syn_retransmissions, 0u);
  // Without multicast the reverse tuple only exists at the receiving ETR;
  // return packets leaving via the other border miss.  (Gleaning at that
  // same ETR cannot help the sibling.)
  EXPECT_GT(without_summary.miss_drops + without_summary.syn_retransmissions,
            0u);
}

TEST(Pce, ClaimIiPushSlackIsWithinDnsTime) {
  Experiment experiment(pce_config());
  const auto summary = experiment.run();
  const auto& pce = *experiment.internet().domain(0).pce;
  ASSERT_GT(pce.push_slack().count(), 0u);
  // The Step-7b push happens between the Step-1 observation and the DNS
  // answer reaching the host: mean slack must not exceed mean T_DNS.
  EXPECT_LE(pce.push_slack().mean() / 1000.0, summary.t_dns_mean_ms + 0.5);
  EXPECT_GT(pce.push_slack().mean(), 0.0);
}

TEST(Pce, DatabaseLearnsRemoteMappingsAndPeers) {
  Experiment experiment(pce_config());
  experiment.run();
  auto& internet = experiment.internet();
  auto& pce0 = *internet.domain(0).pce;
  EXPECT_GT(pce0.database_size(), 0u);
  const auto* remote =
      pce0.find_remote(internet.domain(1).hosts[0]->address());
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->pce_address, internet.domain(1).pce->address());
  EXPECT_EQ(remote->entry.eid_prefix, internet.domain(1).eid_prefix);
}

TEST(Pce, ReverseUpdatesReachThePceDatabase) {
  Experiment experiment(pce_config());
  experiment.run();
  // Destination-domain PCEs hear about reverse mappings via ETR multicast.
  std::uint64_t reverse_updates = 0;
  for (auto& dom : experiment.internet().domains()) {
    reverse_updates += dom.pce->stats().reverse_updates;
  }
  EXPECT_GT(reverse_updates, 0u);
}

TEST(Pce, ReoptimizeRepushesActiveFlows) {
  Experiment experiment(pce_config());
  experiment.run();
  auto& dom = experiment.internet().domain(0);
  const auto pushed_before = dom.pce->stats().tuples_pushed;
  const auto moved = dom.control_plane->reoptimize();
  EXPECT_GT(moved, 0u);
  EXPECT_GT(dom.pce->stats().tuples_pushed, pushed_before);
}

TEST(Pce, WarmDnsCacheStillConfiguresFlows) {
  // Slow the arrival rate so the resolver cache stays warm between sessions
  // of different hosts to the same destination: the second host's flow must
  // be configured through the warm-cache snoop path (no port-P message).
  auto config = pce_config();
  config.traffic.zipf_alpha = 5.0;  // essentially one hot destination
  config.traffic.sessions_per_second = 4;
  Experiment experiment(config);
  const auto summary = experiment.run();
  EXPECT_EQ(summary.miss_drops, 0u);
  EXPECT_EQ(summary.syn_retransmissions, 0u);
  const auto& stats = experiment.internet().domain(0).pce->stats();
  // More flows configured than port-P messages received: the extras came
  // from the warm path.
  EXPECT_GT(stats.flows_configured, stats.port_p_received);
}

TEST(Pce, OnDemandPcepConfiguresFlowsWithoutSnooping) {
  // A5: snooping off, PCEP on.  Every mapping must be acquired by explicit
  // PCReq/PCRep; flows still get configured and port P stays silent.
  auto config = pce_config();
  config.spec.pce_snoop = false;
  config.spec.pce_on_demand = true;
  Experiment experiment(config);
  const auto summary = experiment.run();
  EXPECT_GT(summary.sessions, 0u);

  const auto& stats = experiment.internet().domain(0).pce->stats();
  EXPECT_EQ(stats.replies_encapsulated, 0u) << "Step 6 disabled";
  EXPECT_EQ(stats.port_p_received, 0u) << "no port-P transport in this arm";
  EXPECT_GT(stats.pcep_requests, 0u);
  EXPECT_GT(stats.pcep_mappings_learned, 0u);
  EXPECT_EQ(stats.pcep_failures, 0u);
  EXPECT_GT(stats.flows_configured, 0u);
  // Destination-side PCEs answered those requests over their sessions.
  std::uint64_t served = 0;
  for (std::size_t d = 1; d < 3; ++d) {
    auto& dst = *experiment.internet().domain(d).pce;
    served += dst.pcep_session(experiment.internet().domain(0).pce->address())
                  .stats()
                  .requests_served;
  }
  EXPECT_GT(served, 0u);
}

TEST(Pce, OnDemandPcepIsSlowerThanSnoopingButFasterThanPull) {
  // The transport ablation's headline ordering on a fixed small workload.
  auto snoop_config = pce_config();
  Experiment snoop(snoop_config);
  const auto s = snoop.run();

  auto pcep_config = pce_config();
  pcep_config.spec.pce_snoop = false;
  pcep_config.spec.pce_on_demand = true;
  Experiment pcep(pcep_config);
  const auto p = pcep.run();

  // Snooping pre-positions mappings: no misses at all.  On-demand PCEP
  // leaves a window of one PCE RTT after the DNS answer; some first packets
  // race into it, but far fewer than with no control plane at all.
  EXPECT_EQ(s.miss_events, 0u);
  EXPECT_GE(p.miss_events, s.miss_events);
  EXPECT_EQ(p.dns_failures, 0u);
  EXPECT_GT(p.established, 0u);
}

}  // namespace
}  // namespace lispcp
