// Workload model tests: host session state machine, SYN retransmission
// recovery, metrics accounting, traffic generation rates.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "workload/generator.hpp"

namespace lispcp::workload {
namespace {

scenario::ExperimentConfig plain_config() {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPlainIp);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.seed = 21;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(10);
  return config;
}

TEST(Workload, SessionLifecycleAccounting) {
  scenario::Experiment experiment(plain_config());
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 100u);
  EXPECT_EQ(summary.established, summary.sessions);
  EXPECT_EQ(summary.completed, summary.sessions);
  EXPECT_EQ(summary.dns_failures, 0u);
  EXPECT_EQ(summary.connect_failures, 0u);
  // T_dns < T_setup always (setup includes the handshake).
  EXPECT_LT(summary.t_dns_mean_ms, summary.t_setup_mean_ms);
}

TEST(Workload, SetupMatchesPaperFormula) {
  // §1: T_setup = T_DNS + 2·OWD(S,D) + OWD(D,S) for the pre-LISP Internet.
  scenario::Experiment experiment(plain_config());
  const auto summary = experiment.run();
  auto& internet = experiment.internet();
  const double owd_ms = internet.owd(0, 1).ms();
  const double expected_ms = summary.t_dns_mean_ms + 3.0 * owd_ms;
  // Allow processing delays and the host->ITR leg asymmetry a small margin.
  EXPECT_NEAR(summary.t_setup_mean_ms, expected_ms, expected_ms * 0.05);
}

TEST(Workload, ServerStatsCountDataAndResponses) {
  scenario::Experiment experiment(plain_config());
  const auto summary = experiment.run();
  std::uint64_t data_received = 0;
  std::uint64_t responses_sent = 0;
  for (auto& dom : experiment.internet().domains()) {
    for (auto* host : dom.hosts) {
      data_received += host->stats().data_packets_received;
      responses_sent += host->stats().responses_sent;
    }
  }
  // 4 data packets per session, each answered.
  EXPECT_EQ(data_received, summary.sessions * 4);
  EXPECT_EQ(responses_sent, data_received);
}

TEST(Workload, GeneratorHonoursMaxSessions) {
  auto config = plain_config();
  config.traffic.max_sessions = 17;
  scenario::Experiment experiment(config);
  const auto summary = experiment.run();
  EXPECT_EQ(summary.sessions, 17u);
}

TEST(Workload, GeneratorRateIsApproximatelyPoisson) {
  auto config = plain_config();
  config.traffic.sessions_per_second = 50;
  config.traffic.duration = sim::SimDuration::seconds(40);
  scenario::Experiment experiment(config);
  const auto summary = experiment.run();
  // 50/s over 40 s = 2000 expected; Poisson sd ~ 45.
  EXPECT_NEAR(static_cast<double>(summary.sessions), 2000.0, 150.0);
}

TEST(Workload, GeneratorValidatesInput) {
  sim::Simulator sim;
  TrafficConfig cfg;
  EXPECT_THROW(TrafficGenerator(sim, {}, {dns::DomainName::from_string("x.y")},
                                cfg, sim::Rng(1)),
               std::invalid_argument);
}

TEST(Workload, ZipfSkewConcentratesDestinations) {
  // With extreme skew nearly every session goes to rank-0; under plain IP
  // that destination's server sees almost all SYNs.
  auto config = plain_config();
  config.traffic.zipf_alpha = 4.0;
  scenario::Experiment experiment(config);
  const auto summary = experiment.run();
  std::uint64_t max_syns = 0;
  for (auto& dom : experiment.internet().domains()) {
    for (auto* host : dom.hosts) {
      max_syns = std::max(max_syns, host->stats().syns_received);
    }
  }
  EXPECT_GT(max_syns, summary.sessions * 8 / 10);
}

TEST(Workload, SynRetransmissionRecoversFromFirstPacketDrop) {
  // Under ALT-drop the first SYN toward a cold destination dies at the ITR;
  // the client's 3 s RTO recovers it, and the session's setup time shows
  // the full penalty.
  auto config = plain_config();
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kAltDrop);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.seed = 21;
  config.traffic.sessions_per_second = 1;  // slow: many cold destinations
  config.traffic.duration = sim::SimDuration::seconds(30);
  scenario::Experiment experiment(config);
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 10u);
  EXPECT_GT(summary.syn_retransmissions, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
  // Affected sessions pay >= 3000 ms: visible at the p95/p99 tail.
  EXPECT_GT(summary.t_setup_p99_ms, 3000.0);
  // Unaffected (cache-warm) sessions stay fast.
  EXPECT_LT(summary.t_setup_p50_ms, 200.0);
}

TEST(Workload, RecoveryUnderRandomLoss) {
  // 1% loss on every provider access link: DNS queries are recovered by the
  // resolver's retry logic and SYN/SYN-ACK losses by the client's RTO, so
  // connections still establish; data packets have no retransmission in the
  // model, so some sessions legitimately do not complete their exchange.
  auto config = plain_config();
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.access_loss = 0.01;
  config.spec.seed = 55;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(20);
  config.drain = sim::SimDuration::seconds(120);
  scenario::Experiment experiment(config);
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 200u);
  // Control-plane and handshake recovery: nearly everything establishes.
  EXPECT_GT(summary.established + summary.connect_failures +
                summary.dns_failures,
            summary.sessions * 99 / 100);
  EXPECT_GT(summary.established, summary.sessions * 9 / 10);
  // Loss must actually have occurred for this test to mean anything.
  EXPECT_GT(experiment.internet().network().counters().drops_loss, 0u);
  EXPECT_LE(summary.completed, summary.established);
}

TEST(Workload, MetricsHandshakeRequiresKnownSession) {
  WorkloadMetrics metrics;
  metrics.handshake_complete(999, sim::SimTime::zero());  // unknown id
  EXPECT_EQ(metrics.established(), 0u);
  metrics.session_started(1, sim::SimTime::zero());
  metrics.handshake_complete(1, sim::SimTime::zero() + sim::SimDuration::millis(50));
  EXPECT_EQ(metrics.established(), 1u);
  EXPECT_NEAR(metrics.t_setup().mean(), 50'000.0, 1.0);  // us
}

}  // namespace
}  // namespace lispcp::workload
