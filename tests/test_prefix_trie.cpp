#include <gtest/gtest.h>

#include <random>

#include "net/prefix_trie.hpp"

namespace lispcp::net {
namespace {

TEST(PrefixTrie, EmptyLookupIsNull) {
  PrefixTrie<int> trie;
  EXPECT_EQ(trie.lookup(Ipv4Address(1, 2, 3, 4)), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, ExactAndCoveringLookup) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 1));
  ASSERT_NE(trie.lookup(Ipv4Address(10, 200, 3, 4)), nullptr);
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 200, 3, 4)), 1);
  EXPECT_EQ(trie.lookup(Ipv4Address(11, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 8);
  trie.insert(Ipv4Prefix::from_string("10.1.0.0/16"), 16);
  trie.insert(Ipv4Prefix::from_string("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 9, 9)), 16);
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 9, 9, 9)), 8);
}

TEST(PrefixTrie, DefaultRouteMatchesWhenNothingElseDoes) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix(), 0);
  trie.insert(Ipv4Prefix::from_string("192.168.0.0/16"), 1);
  EXPECT_EQ(*trie.lookup(Ipv4Address(8, 8, 8, 8)), 0);
  EXPECT_EQ(*trie.lookup(Ipv4Address(192, 168, 1, 1)), 1);
}

TEST(PrefixTrie, InsertReplacesValue) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 2));
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 0, 0, 1)), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, EraseExactOnly) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 8);
  trie.insert(Ipv4Prefix::from_string("10.1.0.0/16"), 16);
  EXPECT_FALSE(trie.erase(Ipv4Prefix::from_string("10.2.0.0/16")));
  EXPECT_TRUE(trie.erase(Ipv4Prefix::from_string("10.1.0.0/16")));
  EXPECT_EQ(trie.size(), 1u);
  // The /8 still covers what the /16 used to.
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 0, 1)), 8);
  EXPECT_FALSE(trie.erase(Ipv4Prefix::from_string("10.1.0.0/16")));
}

TEST(PrefixTrie, FindExactDistinguishesLengths) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 8);
  EXPECT_NE(trie.find_exact(Ipv4Prefix::from_string("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.find_exact(Ipv4Prefix::from_string("10.0.0.0/16")), nullptr);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::host(Ipv4Address(1, 2, 3, 4)), 1);
  EXPECT_NE(trie.lookup(Ipv4Address(1, 2, 3, 4)), nullptr);
  EXPECT_EQ(trie.lookup(Ipv4Address(1, 2, 3, 5)), nullptr);
}

TEST(PrefixTrie, LookupWithPrefixReportsMatch) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 8);
  trie.insert(Ipv4Prefix::from_string("10.1.0.0/16"), 16);
  auto match = trie.lookup_with_prefix(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, Ipv4Prefix::from_string("10.1.0.0/16"));
  EXPECT_EQ(*match->second, 16);
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 1);
  trie.insert(Ipv4Prefix::from_string("9.0.0.0/8"), 2);
  trie.insert(Ipv4Prefix::from_string("10.1.0.0/16"), 3);
  std::vector<Ipv4Prefix> seen;
  trie.for_each([&](const Ipv4Prefix& p, const int&) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], Ipv4Prefix::from_string("9.0.0.0/8"));
  EXPECT_EQ(seen[1], Ipv4Prefix::from_string("10.0.0.0/8"));
  EXPECT_EQ(seen[2], Ipv4Prefix::from_string("10.1.0.0/16"));
}

TEST(PrefixTrie, Clear) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, MoveSemantics) {
  PrefixTrie<int> a;
  a.insert(Ipv4Prefix::from_string("10.0.0.0/8"), 1);
  PrefixTrie<int> b = std::move(a);
  EXPECT_EQ(*b.lookup(Ipv4Address(10, 0, 0, 1)), 1);
}

/// Property sweep: the trie must agree with a brute-force linear scan on
/// random prefix tables across densities.
class PrefixTrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrefixTrieProperty, MatchesLinearScan) {
  const int prefix_count = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(prefix_count) * 7919);
  PrefixTrie<int> trie;
  std::vector<std::pair<Ipv4Prefix, int>> table;

  for (int i = 0; i < prefix_count; ++i) {
    const auto addr = Ipv4Address(static_cast<std::uint32_t>(rng()));
    const int length = static_cast<int>(rng() % 33);
    const Ipv4Prefix prefix(addr, length);
    // Mirror trie replace semantics in the reference table.
    auto existing = std::find_if(table.begin(), table.end(),
                                 [&](const auto& e) { return e.first == prefix; });
    if (existing != table.end()) {
      existing->second = i;
    } else {
      table.emplace_back(prefix, i);
    }
    trie.insert(prefix, i);
  }
  EXPECT_EQ(trie.size(), table.size());

  for (int probe = 0; probe < 500; ++probe) {
    const auto addr = Ipv4Address(static_cast<std::uint32_t>(rng()));
    const int* got = trie.lookup(addr);
    // Brute force: most specific containing prefix, ties impossible.
    const std::pair<Ipv4Prefix, int>* expected = nullptr;
    for (const auto& entry : table) {
      if (entry.first.contains(addr) &&
          (expected == nullptr ||
           entry.first.length() > expected->first.length())) {
        expected = &entry;
      }
    }
    if (expected == nullptr) {
      EXPECT_EQ(got, nullptr) << addr.to_string();
    } else {
      ASSERT_NE(got, nullptr) << addr.to_string();
      EXPECT_EQ(*got, expected->second) << addr.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, PrefixTrieProperty,
                         ::testing::Values(1, 4, 16, 64, 256, 1024));

}  // namespace
}  // namespace lispcp::net
