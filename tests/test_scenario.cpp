// Experiment-harness tests: traffic modes, drain semantics, summary
// consistency, and the harness's determinism contract.
#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

namespace lispcp::scenario {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  config.spec.domains = 4;
  config.spec.hosts_per_domain = 2;
  config.spec.seed = 77;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(10);
  return config;
}

TEST(Experiment, SingleSourceOnlyDomainZeroOriginates) {
  auto config = base_config();
  config.mode = TrafficMode::kSingleSource;
  Experiment experiment(config);
  experiment.run();
  auto& internet = experiment.internet();
  // Only domain 0's PCE received port-P messages (it is the only source).
  EXPECT_GT(internet.domain(0).pce->stats().port_p_received, 0u);
  for (std::size_t d = 1; d < 4; ++d) {
    EXPECT_EQ(internet.domain(d).pce->stats().port_p_received, 0u) << d;
  }
}

TEST(Experiment, AllToAllEveryDomainOriginates) {
  auto config = base_config();
  config.mode = TrafficMode::kAllToAll;
  config.traffic.sessions_per_second = 40;
  Experiment experiment(config);
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 100u);
  auto& internet = experiment.internet();
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_GT(internet.domain(d).pce->stats().dns_queries_observed, 0u) << d;
  }
  EXPECT_EQ(summary.established, summary.sessions);
}

TEST(Experiment, AllToAllSplitsAggregateRate) {
  auto config = base_config();
  config.mode = TrafficMode::kAllToAll;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(20);
  Experiment experiment(config);
  const auto summary = experiment.run();
  // Aggregate ~40/s over 20 s: the per-domain split must preserve the total.
  EXPECT_NEAR(static_cast<double>(summary.sessions), 800.0, 120.0);
}

TEST(Experiment, SummaryWithoutRunIsEmpty) {
  Experiment experiment(base_config());
  const auto summary = experiment.summary();
  EXPECT_EQ(summary.sessions, 0u);
  EXPECT_EQ(summary.established, 0u);
}

TEST(Experiment, DrainAllowsLateHandshakes) {
  // With zero drain, sessions started near the end of the arrival window
  // cannot finish; the summary must reflect that honestly.
  auto config = base_config();
  config.drain = sim::SimDuration::nanos(0);
  const auto no_drain = Experiment(config).run();
  config.drain = sim::SimDuration::seconds(20);
  const auto with_drain = Experiment(config).run();
  EXPECT_EQ(with_drain.established, with_drain.sessions);
  EXPECT_LE(no_drain.established, no_drain.sessions);
}

TEST(Experiment, FirstPacketLossRateDerivation) {
  ExperimentSummary summary;
  summary.sessions = 200;
  summary.sessions_with_retransmission = 25;
  EXPECT_DOUBLE_EQ(summary.first_packet_loss_rate(), 0.125);
  ExperimentSummary empty;
  EXPECT_DOUBLE_EQ(empty.first_packet_loss_rate(), 0.0);
}

TEST(Experiment, MaxSessionsAppliesPerMode) {
  auto config = base_config();
  config.mode = TrafficMode::kAllToAll;
  config.traffic.max_sessions = 40;  // 10 per sending domain
  const auto summary = Experiment(config).run();
  EXPECT_EQ(summary.sessions, 40u);
}

}  // namespace
}  // namespace lispcp::scenario
