#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hpp"

namespace lispcp::sim {
namespace {

class Endpoint : public Node {
 public:
  Endpoint(Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }
  void deliver(net::Packet) override {}
};

struct Fixture {
  Fixture() : net(sim) {
    a = &net.make<Endpoint>("alpha", net::Ipv4Address(1, 0, 0, 1));
    r = &net.make<Node>("relay");
    b = &net.make<Endpoint>("beta", net::Ipv4Address(1, 0, 0, 2));
    net.connect(a->id(), r->id());
    net.connect(r->id(), b->id());
    net.add_host_route(a->id(), b->address(), r->id());
    net.add_host_route(r->id(), b->address(), b->id());
    net.set_tracer(&tracer);
  }
  net::Packet packet() {
    return net::Packet::udp(a->address(), b->address(), 1, 2,
                            std::make_shared<net::RawPayload>(10));
  }
  Simulator sim;
  Network net;
  RecordingTracer tracer;
  Endpoint* a = nullptr;
  Node* r = nullptr;
  Endpoint* b = nullptr;
};

TEST(RecordingTracer, RecordsLifecycleInOrder) {
  Fixture f;
  f.a->send(f.packet());
  f.sim.run();
  const auto& records = f.tracer.records();
  // send@alpha, forward@alpha, forward@relay, deliver@beta.
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].kind, TraceRecord::Kind::kSend);
  EXPECT_EQ(records[0].node, "alpha");
  EXPECT_EQ(records[1].kind, TraceRecord::Kind::kForward);
  EXPECT_EQ(records[2].kind, TraceRecord::Kind::kForward);
  EXPECT_EQ(records[2].node, "relay");
  EXPECT_EQ(records[3].kind, TraceRecord::Kind::kDeliver);
  EXPECT_EQ(records[3].node, "beta");
  EXPECT_LE(records[0].time, records[3].time);
}

TEST(RecordingTracer, PacketJourneyFollowsOnePacket) {
  Fixture f;
  auto p1 = f.packet();
  const auto id1 = p1.id();
  f.a->send(std::move(p1));
  f.a->send(f.packet());
  f.sim.run();
  const auto journey = f.tracer.packet_journey(id1);
  ASSERT_EQ(journey.size(), 4u);
  for (const auto& rec : journey) EXPECT_EQ(rec.packet_id, id1);
}

TEST(RecordingTracer, FilterSelectsEvents) {
  Fixture f;
  f.tracer.set_filter([](const TraceRecord& rec) {
    return rec.kind == TraceRecord::Kind::kDeliver;
  });
  f.a->send(f.packet());
  f.sim.run();
  ASSERT_EQ(f.tracer.records().size(), 1u);
  EXPECT_EQ(f.tracer.records()[0].node, "beta");
}

TEST(RecordingTracer, CapacityBoundsMemory) {
  Fixture f;
  RecordingTracer small(3);
  f.net.set_tracer(&small);
  for (int i = 0; i < 5; ++i) f.a->send(f.packet());
  f.sim.run();
  EXPECT_EQ(small.records().size(), 3u);
  EXPECT_EQ(small.recorded_total(), 20u);  // 5 packets x 4 events
  EXPECT_EQ(small.overflowed(), 17u);
}

TEST(RecordingTracer, DropRecordsCarryReason) {
  Fixture f;
  auto p = net::Packet::udp(f.a->address(), net::Ipv4Address(9, 9, 9, 9), 1, 2,
                            std::make_shared<net::RawPayload>(1));
  f.a->send(std::move(p));  // no route anywhere
  f.sim.run();
  bool saw_drop = false;
  for (const auto& rec : f.tracer.records()) {
    if (rec.kind == TraceRecord::Kind::kDrop) {
      saw_drop = true;
      EXPECT_EQ(rec.drop_reason, DropReason::kNoRoute);
      EXPECT_NE(rec.to_string().find("no-route"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(RecordingTracer, TextOutputOneLinePerRecord) {
  Fixture f;
  f.a->send(f.packet());
  f.sim.run();
  std::ostringstream os;
  f.tracer.write_text(os);
  const auto text = os.str();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            f.tracer.records().size());
  EXPECT_NE(text.find("SEND @alpha"), std::string::npos);
  EXPECT_NE(text.find("DELIVER @beta"), std::string::npos);
}

TEST(RecordingTracer, ClearResets) {
  Fixture f;
  f.a->send(f.packet());
  f.sim.run();
  f.tracer.clear();
  EXPECT_TRUE(f.tracer.records().empty());
  EXPECT_EQ(f.tracer.recorded_total(), 0u);
}

TEST(TraceStrings, KindAndReasonNames) {
  EXPECT_STREQ(to_string(TraceRecord::Kind::kConsume), "CONSUME");
  EXPECT_STREQ(to_string(DropReason::kMappingMiss), "mapping-miss");
  EXPECT_STREQ(to_string(DropReason::kQueueFull), "queue-full");
}

}  // namespace
}  // namespace lispcp::sim
