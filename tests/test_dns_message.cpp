#include <gtest/gtest.h>

#include "dns/message.hpp"

namespace lispcp::dns {
namespace {

Question q(const char* name) {
  return Question{DomainName::from_string(name), RrType::kA};
}

TEST(DnsMessage, QueryFactory) {
  auto m = DnsMessage::query(42, q("h0.d1.example"), true);
  EXPECT_EQ(m->id(), 42);
  EXPECT_FALSE(m->is_response());
  EXPECT_TRUE(m->recursion_desired());
  EXPECT_EQ(m->question().name.to_string(), "h0.d1.example");
  EXPECT_FALSE(m->is_referral());
}

TEST(DnsMessage, AnswerFactoryAndFirstAddress) {
  auto m = DnsMessage::answer(
      7, q("h0.d1.example"),
      {ResourceRecord::a(DomainName::from_string("h0.d1.example"),
                         net::Ipv4Address(100, 64, 1, 10))},
      true);
  EXPECT_TRUE(m->is_response());
  EXPECT_TRUE(m->authoritative());
  EXPECT_EQ(m->rcode(), Rcode::kNoError);
  ASSERT_TRUE(m->first_address().has_value());
  EXPECT_EQ(*m->first_address(), net::Ipv4Address(100, 64, 1, 10));
  EXPECT_FALSE(m->is_referral());
}

TEST(DnsMessage, ReferralFactory) {
  auto m = DnsMessage::referral(
      9, q("h0.d1.example"),
      {ResourceRecord::ns(DomainName::from_string("d1.example"),
                          DomainName::from_string("ns.d1.example"))},
      {ResourceRecord::a(DomainName::from_string("ns.d1.example"),
                         net::Ipv4Address(192, 1, 1, 20))});
  EXPECT_TRUE(m->is_referral());
  EXPECT_FALSE(m->first_address().has_value());
  ASSERT_EQ(m->authority().size(), 1u);
  EXPECT_EQ(m->authority()[0].type, RrType::kNs);
  ASSERT_EQ(m->additional().size(), 1u);
  EXPECT_EQ(m->additional()[0].addr, net::Ipv4Address(192, 1, 1, 20));
}

TEST(DnsMessage, ErrorFactory) {
  auto m = DnsMessage::error(3, q("nope.example"), Rcode::kNxDomain);
  EXPECT_TRUE(m->is_response());
  EXPECT_EQ(m->rcode(), Rcode::kNxDomain);
  EXPECT_FALSE(m->is_referral());
}

TEST(DnsMessage, WireRoundTripAnswer) {
  auto m = DnsMessage::answer(
      0xBEEF, q("h3.d7.example"),
      {ResourceRecord::a(DomainName::from_string("h3.d7.example"),
                         net::Ipv4Address(100, 64, 7, 13), 600)},
      true);
  net::ByteWriter w;
  m->serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), m->wire_size());

  net::ByteReader r(bytes);
  auto parsed = DnsMessage::parse_wire(r);
  EXPECT_EQ(parsed->id(), 0xBEEF);
  EXPECT_TRUE(parsed->is_response());
  EXPECT_TRUE(parsed->authoritative());
  EXPECT_EQ(parsed->question(), m->question());
  ASSERT_EQ(parsed->answers().size(), 1u);
  EXPECT_EQ(parsed->answers()[0], m->answers()[0]);
}

TEST(DnsMessage, WireRoundTripReferral) {
  auto m = DnsMessage::referral(
      1, q("h0.d2.example"),
      {ResourceRecord::ns(DomainName::from_string("d2.example"),
                          DomainName::from_string("ns.d2.example"), 7200)},
      {ResourceRecord::a(DomainName::from_string("ns.d2.example"),
                         net::Ipv4Address(192, 1, 2, 20), 7200)});
  net::ByteWriter w;
  m->serialize(w);
  auto bytes = w.take();
  net::ByteReader r(bytes);
  auto parsed = DnsMessage::parse_wire(r);
  EXPECT_TRUE(parsed->is_referral());
  EXPECT_EQ(parsed->authority()[0].ns_name,
            DomainName::from_string("ns.d2.example"));
  EXPECT_EQ(parsed->additional()[0].ttl_seconds, 7200u);
}

TEST(DnsMessage, WireRoundTripQueryFlags) {
  auto m = DnsMessage::query(5, q("x.example"), true);
  net::ByteWriter w;
  m->serialize(w);
  auto bytes = w.take();
  net::ByteReader r(bytes);
  auto parsed = DnsMessage::parse_wire(r);
  EXPECT_FALSE(parsed->is_response());
  EXPECT_TRUE(parsed->recursion_desired());
  EXPECT_FALSE(parsed->authoritative());
}

TEST(DnsMessage, WireRejectsTruncation) {
  auto m = DnsMessage::query(5, q("x.example"), true);
  net::ByteWriter w;
  m->serialize(w);
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  net::ByteReader r(bytes);
  EXPECT_THROW(DnsMessage::parse_wire(r), net::ParseError);
}

TEST(ResourceRecord, WireSizeMatchesSerialization) {
  auto a = ResourceRecord::a(DomainName::from_string("host.zone.example"),
                             net::Ipv4Address(1, 2, 3, 4));
  net::ByteWriter w;
  a.serialize(w);
  EXPECT_EQ(w.size(), a.wire_size());

  auto ns = ResourceRecord::ns(DomainName::from_string("zone.example"),
                               DomainName::from_string("ns1.zone.example"));
  net::ByteWriter w2;
  ns.serialize(w2);
  EXPECT_EQ(w2.size(), ns.wire_size());
}

TEST(DnsMessage, DescribeIsInformative) {
  auto m = DnsMessage::answer(
      7, q("h0.d1.example"),
      {ResourceRecord::a(DomainName::from_string("h0.d1.example"),
                         net::Ipv4Address(100, 64, 1, 10))},
      true);
  const auto text = m->describe();
  EXPECT_NE(text.find("h0.d1.example"), std::string::npos);
  EXPECT_NE(text.find("100.64.1.10"), std::string::npos);
}

}  // namespace
}  // namespace lispcp::dns
