// Tests for pcep/session: handshake FSM (active/passive), keepalive and
// dead-timer supervision, request/reply correlation, timeout + retry, and
// teardown semantics.  Two sessions are wired back-to-back through the
// simulator with a configurable one-way delay and per-direction drop
// switches (lossy-transport injection).
#include <gtest/gtest.h>

#include "pcep/session.hpp"

namespace lispcp::pcep {
namespace {

lisp::MapEntry mapping_for(net::Ipv4Address eid) {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix(eid, 24);
  entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 0, 1), 1, 100, true}};
  return entry;
}

struct Pair {
  explicit Pair(SessionConfig config = fast_config()) {
    a = std::make_unique<Session>(sim, config, [this](auto message) {
      if (drop_a_to_b) return;
      sim.schedule(delay, [this, message] { b->on_message(*message); });
    });
    b = std::make_unique<Session>(sim, config, [this](auto message) {
      if (drop_b_to_a) return;
      sim.schedule(delay, [this, message] { a->on_message(*message); });
    });
  }

  /// Short timers so dead-timer tests stay cheap.
  static SessionConfig fast_config() {
    SessionConfig config;
    config.keepalive = sim::SimDuration::seconds(1);
    config.dead_factor = 4;
    config.open_retry = sim::SimDuration::millis(500);
    config.max_open_retries = 3;
    config.request_timeout = sim::SimDuration::millis(200);
    config.max_request_retries = 2;
    return config;
  }

  void handshake() {
    a->open();
    sim.run();
    ASSERT_EQ(a->state(), SessionState::kUp);
    ASSERT_EQ(b->state(), SessionState::kUp);
  }

  sim::Simulator sim;
  sim::SimDuration delay = sim::SimDuration::millis(10);
  bool drop_a_to_b = false;
  bool drop_b_to_a = false;
  std::unique_ptr<Session> a;
  std::unique_ptr<Session> b;
};

TEST(PcepSession, ActiveOpenCompletesHandshake) {
  Pair pair;
  EXPECT_EQ(pair.a->state(), SessionState::kIdle);
  pair.a->open();
  EXPECT_EQ(pair.a->state(), SessionState::kOpenWait);
  pair.sim.run();
  EXPECT_EQ(pair.a->state(), SessionState::kUp);
  EXPECT_EQ(pair.b->state(), SessionState::kUp);
  // Each side sent exactly one Open (no retries needed on a clean link).
  EXPECT_EQ(pair.a->stats().opens_sent, 1u);
  EXPECT_EQ(pair.b->stats().opens_sent, 1u);
}

TEST(PcepSession, PassiveSideAnswersWithItsOwnOpen) {
  Pair pair;
  pair.a->open();
  pair.sim.run();
  // b never called open() yet reaches Up: the incoming Open triggered its own.
  EXPECT_EQ(pair.b->state(), SessionState::kUp);
  EXPECT_GE(pair.b->stats().keepalives_sent, 1u);
}

TEST(PcepSession, OpenIsIdempotent) {
  Pair pair;
  pair.a->open();
  pair.a->open();  // second call must not double-send
  pair.sim.run();
  EXPECT_EQ(pair.a->stats().opens_sent, 1u);
}

TEST(PcepSession, RequestReplyDeliversMapping) {
  Pair pair;
  pair.b->set_mapping_provider(
      [](net::Ipv4Address eid) { return mapping_for(eid); });
  pair.handshake();

  const auto eid = net::Ipv4Address(100, 64, 2, 10);
  std::optional<lisp::MapEntry> received;
  pair.a->request_mapping(eid, [&](auto mapping) { received = mapping; });
  pair.sim.run();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->eid_prefix, net::Ipv4Prefix(eid, 24));
  EXPECT_EQ(pair.a->stats().replies_received, 1u);
  EXPECT_EQ(pair.b->stats().requests_served, 1u);
  EXPECT_EQ(pair.a->outstanding_requests(), 0u);
}

TEST(PcepSession, RequestBeforeHandshakeIsQueuedAndAutoOpens) {
  Pair pair;
  pair.b->set_mapping_provider(
      [](net::Ipv4Address eid) { return mapping_for(eid); });
  bool answered = false;
  // Neither side has opened: the request must trigger the handshake itself.
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10),
                          [&](auto mapping) { answered = mapping.has_value(); });
  EXPECT_EQ(pair.a->outstanding_requests(), 1u);
  pair.sim.run();
  EXPECT_TRUE(answered);
  EXPECT_EQ(pair.a->state(), SessionState::kUp);
}

TEST(PcepSession, MissingProviderYieldsNoPath) {
  Pair pair;  // b has no mapping provider
  pair.handshake();
  std::optional<lisp::MapEntry> received = mapping_for(net::Ipv4Address());
  bool called = false;
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10), [&](auto mapping) {
    called = true;
    received = mapping;
  });
  pair.sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(received.has_value());
  EXPECT_EQ(pair.a->stats().no_paths_received, 1u);
}

TEST(PcepSession, ConcurrentRequestsCorrelateIndependently) {
  Pair pair;
  pair.b->set_mapping_provider(
      [](net::Ipv4Address eid) { return mapping_for(eid); });
  pair.handshake();

  std::vector<net::Ipv4Prefix> answers;
  for (int i = 0; i < 5; ++i) {
    pair.a->request_mapping(net::Ipv4Address(100, 64, 10 + i, 1),
                            [&answers](auto mapping) {
                              ASSERT_TRUE(mapping.has_value());
                              answers.push_back(mapping->eid_prefix);
                            });
  }
  pair.sim.run();
  ASSERT_EQ(answers.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(answers[i],
              net::Ipv4Prefix(net::Ipv4Address(100, 64, 10 + i, 1), 24));
  }
}

TEST(PcepSession, RequestTimeoutRetriesThenFails) {
  Pair pair;
  pair.handshake();
  pair.drop_a_to_b = true;  // requests vanish from here on

  bool called = false;
  std::optional<lisp::MapEntry> received;
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10), [&](auto mapping) {
    called = true;
    received = mapping;
  });
  pair.sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(received.has_value());
  // Initial send + max_request_retries retransmissions, each timing out.
  EXPECT_EQ(pair.a->stats().requests_sent, 3u);
  EXPECT_EQ(pair.a->stats().request_timeouts, 3u);
  EXPECT_EQ(pair.a->stats().requests_failed, 1u);
  EXPECT_EQ(pair.a->outstanding_requests(), 0u);
}

TEST(PcepSession, OpenRetriesThenGivesUp) {
  Pair pair;
  pair.drop_a_to_b = true;
  pair.drop_b_to_a = true;
  bool called = false;
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10),
                          [&](auto mapping) { called = !mapping.has_value(); });
  pair.sim.run();
  EXPECT_EQ(pair.a->state(), SessionState::kClosed);
  EXPECT_EQ(pair.a->stats().opens_sent, 1u + 3u);  // initial + max retries
  EXPECT_TRUE(called) << "queued request must fail when the open gives up";
}

TEST(PcepSession, DeadTimerExpiresWhenPeerGoesSilent) {
  Pair pair;
  pair.handshake();
  // Sever both directions; keepalives stop arriving.
  pair.drop_a_to_b = true;
  pair.drop_b_to_a = true;
  // Dead timer = keepalive * 4 = 4s; give it room.
  pair.sim.run_for(sim::SimDuration::seconds(10));
  EXPECT_EQ(pair.a->state(), SessionState::kClosed);
  EXPECT_EQ(pair.b->state(), SessionState::kClosed);
  EXPECT_EQ(pair.a->stats().dead_timer_expiries, 1u);
}

TEST(PcepSession, KeepalivesSustainAnIdleSession) {
  Pair pair;
  pair.handshake();
  pair.sim.run_for(sim::SimDuration::seconds(30));  // 7+ dead intervals idle
  EXPECT_EQ(pair.a->state(), SessionState::kUp);
  EXPECT_EQ(pair.b->state(), SessionState::kUp);
  EXPECT_EQ(pair.a->stats().dead_timer_expiries, 0u);
  EXPECT_GE(pair.a->stats().keepalives_received, 25u);
}

TEST(PcepSession, CloseSendsCloseAndFailsOutstanding) {
  Pair pair;
  pair.handshake();
  pair.drop_b_to_a = true;  // replies lost: the request stays outstanding
  bool failed = false;
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10),
                          [&](auto mapping) { failed = !mapping.has_value(); });
  pair.a->close(Close::Reason::kNoExplanation);
  EXPECT_EQ(pair.a->state(), SessionState::kClosed);
  EXPECT_TRUE(failed);
  pair.sim.run();
  EXPECT_EQ(pair.b->state(), SessionState::kClosed) << "peer honours Close";
}

TEST(PcepSession, RequestOnClosedSessionFailsAsynchronously) {
  Pair pair;
  pair.a->close(Close::Reason::kNoExplanation);
  bool called = false;
  pair.a->request_mapping(net::Ipv4Address(100, 64, 2, 10),
                          [&](auto mapping) { called = !mapping.has_value(); });
  EXPECT_FALSE(called) << "failure must not re-enter the caller synchronously";
  pair.sim.run();
  EXPECT_TRUE(called);
}

TEST(PcepSession, DuplicateOpenOnUpSessionRaisesError) {
  Pair pair;
  pair.handshake();
  const auto errors_before = pair.b->stats().errors_received;
  pair.a->on_message(Open(30, 120, 9));  // stray Open into an Up session
  pair.sim.run();
  EXPECT_EQ(pair.a->stats().errors_sent, 1u);
  EXPECT_EQ(pair.b->stats().errors_received, errors_before + 1);
  EXPECT_EQ(pair.a->state(), SessionState::kUp) << "error is non-fatal";
}

TEST(PcepSession, UnmatchedReplyRaisesError) {
  Pair pair;
  pair.handshake();
  pair.a->on_message(MapComputationReply(4242));
  EXPECT_EQ(pair.a->stats().errors_sent, 1u);
}

TEST(PcepSession, InvalidConfigIsRejected) {
  sim::Simulator sim;
  EXPECT_THROW(Session(sim, SessionConfig{}, nullptr), std::invalid_argument);
  SessionConfig bad;
  bad.dead_factor = 0;
  EXPECT_THROW(Session(sim, bad, [](auto) {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lossy-transport property sweep: under any loss rate, every request ends
// in exactly one terminal outcome (answered or failed), nothing hangs, and
// the retry accounting stays consistent.

class PcepLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(PcepLossProperty, EveryRequestTerminatesExactlyOnce) {
  const double loss = GetParam();
  SessionConfig config = Pair::fast_config();
  Pair pair(config);
  sim::Rng rng(42);
  // Re-wire both directions through a lossy pipe.
  pair.a = std::make_unique<Session>(pair.sim, config, [&](auto message) {
    if (rng.chance(loss)) return;
    pair.sim.schedule(pair.delay, [&pair, message] { pair.b->on_message(*message); });
  });
  pair.b = std::make_unique<Session>(pair.sim, config, [&](auto message) {
    if (rng.chance(loss)) return;
    pair.sim.schedule(pair.delay, [&pair, message] { pair.a->on_message(*message); });
  });
  pair.b->set_mapping_provider(
      [](net::Ipv4Address eid) { return mapping_for(eid); });

  constexpr int kRequests = 40;
  int answered = 0, failed = 0;
  for (int i = 0; i < kRequests; ++i) {
    pair.a->request_mapping(net::Ipv4Address(100, 64, 1, 1 + i),
                            [&](auto mapping) {
                              mapping.has_value() ? ++answered : ++failed;
                            });
  }
  pair.sim.run();  // must terminate: every timer is bounded or daemon
  EXPECT_EQ(answered + failed, kRequests)
      << "each handler fires exactly once";
  EXPECT_EQ(pair.a->outstanding_requests(), 0u);
  if (loss == 0.0) {
    EXPECT_EQ(failed, 0);
  }
  if (loss > 0.9) {
    EXPECT_GT(failed, 0) << "a near-dead link must surface failures";
  }
  // Retry accounting: sends = first attempts that reached the wire plus
  // retransmissions; never more than (retries+1) per request.
  EXPECT_LE(pair.a->stats().requests_sent,
            static_cast<std::uint64_t>(kRequests) *
                (config.max_request_retries + 1));
}

INSTANTIATE_TEST_SUITE_P(LossRates, PcepLossProperty,
                         ::testing::Values(0.0, 0.05, 0.3, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(PcepSession, StateNamesAreStable) {
  EXPECT_EQ(to_string(SessionState::kIdle), "Idle");
  EXPECT_EQ(to_string(SessionState::kOpenWait), "OpenWait");
  EXPECT_EQ(to_string(SessionState::kKeepWait), "KeepWait");
  EXPECT_EQ(to_string(SessionState::kUp), "Up");
  EXPECT_EQ(to_string(SessionState::kClosed), "Closed");
}

}  // namespace
}  // namespace lispcp::pcep
