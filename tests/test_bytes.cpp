#include <gtest/gtest.h>

#include "net/bytes.hpp"
#include "net/checksum.hpp"

namespace lispcp::net {
namespace {

TEST(ByteWriter, BigEndianFields) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ull);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 15u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0xAB);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[1]), 0x12);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[2]), 0x34);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[3]), 0xDE);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[14]), 0x08);
}

TEST(ByteRoundTrip, AllFieldTypes) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0);
  w.u64(~std::uint64_t{0});
  w.address(Ipv4Address(10, 20, 30, 40));
  w.counted_string("hello");
  auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), ~std::uint64_t{0});
  EXPECT_EQ(r.address(), Ipv4Address(10, 20, 30, 40));
  EXPECT_EQ(r.counted_string(), "hello");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, TruncatedInputThrows) {
  ByteWriter w;
  w.u16(42);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.u8(), 42);
  EXPECT_THROW(r.u8(), ParseError);
}

TEST(ByteReader, TruncatedCountedStringThrows) {
  ByteWriter w;
  w.u8(10);  // claims 10 bytes follow
  w.u8('x');
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.counted_string(), ParseError);
}

TEST(ByteWriter, CountedStringLimit) {
  ByteWriter w;
  std::string max(255, 'a');
  EXPECT_NO_THROW(w.counted_string(max));
  std::string too_long(256, 'a');
  EXPECT_THROW(w.counted_string(too_long), std::length_error);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0);  // placeholder at offset 0
  w.u32(0xAABBCCDD);
  w.patch_u16(0, 0xBEEF);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xAABBCCDDu);
}

TEST(ByteWriter, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u8(1);
  EXPECT_THROW(w.patch_u16(0, 5), std::out_of_range);
}

TEST(ByteReader, SkipAndPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  auto bytes = w.take();
  ByteReader r(bytes);
  r.skip(4);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_THROW(r.skip(1), ParseError);
}

TEST(ByteReader, BytesSubspan) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  auto buffer = w.take();
  ByteReader r(buffer);
  auto two = r.bytes(2);
  EXPECT_EQ(static_cast<std::uint8_t>(two[0]), 1);
  EXPECT_EQ(static_cast<std::uint8_t>(two[1]), 2);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 ->
  // fold: 0xddf2 -> complement: 0x220d.
  ByteWriter w;
  w.u16(0x0001);
  w.u16(0xf203);
  w.u16(0xf4f5);
  w.u16(0xf6f7);
  auto bytes = w.take();
  EXPECT_EQ(internet_checksum(bytes), 0x220D);
}

TEST(Checksum, OddLengthPadsWithZero) {
  ByteWriter w;
  w.u8(0x12);
  auto bytes = w.take();
  // One byte 0x12 -> word 0x1200 -> checksum ~0x1200 = 0xEDFF.
  EXPECT_EQ(internet_checksum(bytes), 0xEDFF);
}

TEST(Checksum, VerifiesSelf) {
  ByteWriter w;
  w.u32(0xDEADBEEF);
  w.u16(0);  // checksum slot
  auto bytes = w.take();
  const auto sum = internet_checksum(bytes);
  bytes[4] = std::byte{static_cast<std::uint8_t>(sum >> 8)};
  bytes[5] = std::byte{static_cast<std::uint8_t>(sum)};
  EXPECT_TRUE(checksum_ok(bytes));
  bytes[0] = std::byte{0x00};  // corrupt
  EXPECT_FALSE(checksum_ok(bytes));
}

TEST(Checksum, EmptyInput) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

}  // namespace
}  // namespace lispcp::net
