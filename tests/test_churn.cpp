// Tests for the unified churn surface (routing::ChurnEvent/ChurnPlan) and
// the incremental re-convergence contract: a plan measured against one
// long-lived fabric must be byte-identical to the same plan measured
// against a freshly rebuilt world per event (full replay), for every shard
// count — plus RouteDelta batch-grouping invariance, idle-clock
// time-translation invariance, and wrapper equivalence for the legacy
// run_rehoming_churn / run_policy_event entry points.
#include <gtest/gtest.h>

#include <vector>

#include "routing/bgp.hpp"
#include "routing/dfz_study.hpp"
#include "sim/rng.hpp"

namespace lispcp::routing {
namespace {

DfzStudyConfig small_config(std::size_t deagg = 1) {
  DfzStudyConfig config;
  config.internet.tier1_count = 3;
  config.internet.transit_count = 5;
  config.internet.stub_count = 20;
  config.internet.seed = 11;
  config.scenario = AddressingScenario::kLegacyBgp;
  config.deaggregation_factor = deagg;
  return config;
}

bool measures_eq(const ChurnEventMeasure& a, const ChurnEventMeasure& b) {
  return a.kind == b.kind && a.update_messages == b.update_messages &&
         a.route_records == b.route_records && a.settle_ms == b.settle_ms &&
         a.ases_touched == b.ases_touched &&
         a.engine_events == b.engine_events;
}

bool results_eq(const ChurnPlanResult& a, const ChurnPlanResult& b) {
  if (a.events.size() != b.events.size() || a.flaps != b.flaps ||
      a.update_messages != b.update_messages ||
      a.route_records != b.route_records ||
      a.engine_events != b.engine_events ||
      a.mean_updates_per_flap != b.mean_updates_per_flap ||
      a.mean_records_per_flap != b.mean_records_per_flap ||
      a.mean_settle_ms != b.mean_settle_ms ||
      a.max_settle_ms != b.max_settle_ms || a.span_ms != b.span_ms) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (!measures_eq(a.events[i], b.events[i])) return false;
  }
  return true;
}

TEST(ChurnPlan, IncrementalMatchesFullReplayExactly) {
  // The tentpole's parity gate in unit form: randomized flap sequences,
  // measured incrementally and by rebuild-per-event, must agree on every
  // counter of every event — for K = 1, 2, and 8 shards.
  const DfzStudyConfig base = small_config(2);
  const ChurnPlan plan =
      make_flap_plan(6, base.internet.stub_count, 42,
                     sim::SimDuration::seconds(90), sim::SimDuration::seconds(20));
  ASSERT_EQ(plan.events.size(), 6u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    DfzStudyConfig config = base;
    config.bgp.shards = shards;
    config.bgp.shard_workers = shards == 8 ? 4 : 1;

    const ChurnPlanResult incremental = run_churn_plan(config, plan);
    ChurnPlan replay = plan;
    replay.full_replay = true;
    const ChurnPlanResult full = run_churn_plan(config, replay);

    EXPECT_TRUE(results_eq(incremental, full))
        << "incremental diverged from full replay at " << shards << " shards";
    EXPECT_GT(incremental.update_messages, 0u);
    EXPECT_EQ(incremental.flaps, 6u);
  }
}

TEST(ChurnPlan, DeterministicAcrossShardCountsAndReruns) {
  const ChurnPlan plan = make_flap_plan(4, 20, 7, sim::SimDuration::seconds(60),
                                        sim::SimDuration::seconds(10));
  const ChurnPlanResult reference = run_churn_plan(small_config(), plan);
  EXPECT_TRUE(results_eq(run_churn_plan(small_config(), plan), reference))
      << "rerun diverged";
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    DfzStudyConfig config = small_config();
    config.bgp.shards = shards;
    EXPECT_TRUE(results_eq(run_churn_plan(config, plan), reference))
        << "churn plan diverged at " << shards << " shards";
  }
}

TEST(ChurnPlan, FlapsAreStateRestoring) {
  // Flapping the same site twice must measure identically both times: the
  // first flap restored every RIB and ledger exactly, and cascades are
  // time-translation invariant.
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::flap(3, sim::SimDuration::seconds(5),
                                         sim::SimDuration::seconds(30)));
  plan.events.push_back(ChurnEvent::flap(3, sim::SimDuration::seconds(5),
                                         sim::SimDuration::seconds(30)));
  const ChurnPlanResult result = run_churn_plan(small_config(), plan);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_TRUE(measures_eq(result.events[0], result.events[1]));
  EXPECT_GT(result.events[0].engine_events, 0u);
}

TEST(ChurnPlan, SpacingDoesNotChangeMeasures) {
  // Time-translation invariance through the public surface: the same flap
  // with wildly different idle gaps produces the same measured deltas.
  ChurnPlan tight;
  tight.events.push_back(ChurnEvent::flap(0));
  ChurnPlan spread;
  spread.events.push_back(
      ChurnEvent::flap(0, sim::SimDuration{}, sim::SimDuration::seconds(86400)));
  const auto a = run_churn_plan(small_config(), tight);
  const auto b = run_churn_plan(small_config(), spread);
  ASSERT_EQ(a.events.size(), 1u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_TRUE(measures_eq(a.events[0], b.events[0]));
  EXPECT_GT(b.span_ms, a.span_ms);
}

TEST(ChurnPlan, PrefixDownThenUpEqualsOneFlap) {
  // The decomposed pair measures the same totals as the atomic flap with
  // zero hold (the flap is literally a down event plus an up event).
  ChurnPlan pair;
  pair.events.push_back(ChurnEvent::prefix_down(2, ChurnEvent::kWholeSite));
  pair.events.push_back(ChurnEvent::prefix_up(2, ChurnEvent::kWholeSite));
  ChurnPlan flap;
  flap.events.push_back(ChurnEvent::flap(2));
  const auto decomposed = run_churn_plan(small_config(), pair);
  const auto atomic = run_churn_plan(small_config(), flap);
  EXPECT_EQ(decomposed.update_messages, atomic.update_messages);
  EXPECT_EQ(decomposed.route_records, atomic.route_records);
  EXPECT_EQ(decomposed.engine_events, atomic.engine_events);
  EXPECT_EQ(decomposed.flaps, 0u);
  EXPECT_EQ(atomic.flaps, 1u);
}

TEST(ChurnPlan, SingleFlapTouchesFarFewerEngineEventsThanTheStorm) {
  // The incremental claim in miniature: re-converging one flapped site
  // fires a small fraction of the events the origination storm did.
  DfzStudyConfig config = small_config();
  auto graph_events = [&](const ChurnPlan& plan) {
    return run_churn_plan(config, plan);
  };
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::flap(0));
  const auto result = graph_events(plan);
  ASSERT_EQ(result.events.size(), 1u);
  EXPECT_GT(result.events[0].engine_events, 0u);
  // The storm converges 3 tiers x all prefixes; the flap replays only one
  // site's cascade.  A loose 1/3 bound keeps the test robust while still
  // failing if apply() ever degenerates into a full re-convergence.
  DfzStudyConfig probe = small_config();
  const auto study = run_dfz_study(probe);
  EXPECT_LT(result.events[0].engine_events, study.update_messages * 3)
      << "flap re-convergence should not rescale with the full storm";
}

TEST(ChurnPlan, LispScenarioMeasuresZeroButCountsFlaps) {
  DfzStudyConfig config = small_config();
  config.scenario = AddressingScenario::kLispRlocOnly;
  const ChurnPlan plan = make_flap_plan(5, 20, 3, sim::SimDuration::seconds(60),
                                        sim::SimDuration::seconds(10));
  const auto result = run_churn_plan(config, plan);
  EXPECT_EQ(result.flaps, 5u);
  EXPECT_EQ(result.update_messages, 0u);
  EXPECT_EQ(result.route_records, 0u);
  EXPECT_EQ(result.engine_events, 0u);
  EXPECT_GT(result.span_ms, 0.0);
}

TEST(ChurnPlan, OutOfRangeStubThrows) {
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::flap(500));
  EXPECT_THROW((void)run_churn_plan(small_config(), plan),
               std::invalid_argument);
  ChurnPlan bad_index;
  bad_index.events.push_back(ChurnEvent::prefix_down(0, 9));
  EXPECT_THROW((void)run_churn_plan(small_config(), bad_index),
               std::invalid_argument);
}

TEST(MakeFlapPlan, DeterministicPerSeed) {
  const auto a = make_flap_plan(50, 20, 9, sim::SimDuration::seconds(120),
                                sim::SimDuration::seconds(30));
  const auto b = make_flap_plan(50, 20, 9, sim::SimDuration::seconds(120),
                                sim::SimDuration::seconds(30));
  ASSERT_EQ(a.events.size(), 50u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].stub, b.events[i].stub);
    EXPECT_EQ(a.events[i].spacing.ns(), b.events[i].spacing.ns());
    EXPECT_EQ(a.events[i].hold.ns(), b.events[i].hold.ns());
  }
  // A different seed draws a different sequence.
  const auto c = make_flap_plan(50, 20, 10, sim::SimDuration::seconds(120),
                                sim::SimDuration::seconds(30));
  bool differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].stub != c.events[i].stub ||
        a.events[i].spacing.ns() != c.events[i].spacing.ns()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
  EXPECT_THROW((void)make_flap_plan(1, 0, 1, sim::SimDuration::seconds(1),
                                    sim::SimDuration{}),
               std::invalid_argument);
}

TEST(ChurnWrappers, RehomingChurnEqualsSingleRehomePlan) {
  const DfzStudyConfig config = small_config(4);
  const RehomingChurnResult legacy = run_rehoming_churn(config);
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::rehome(0));
  const ChurnPlanResult churn = run_churn_plan(config, plan);
  ASSERT_EQ(churn.events.size(), 1u);
  EXPECT_EQ(legacy.update_messages, churn.events[0].update_messages);
  EXPECT_EQ(legacy.route_records, churn.events[0].route_records);
  EXPECT_EQ(legacy.settle_ms, churn.events[0].settle_ms);
  EXPECT_EQ(legacy.ases_touched, churn.events[0].ases_touched);
}

TEST(ChurnWrappers, PolicyIncidentValidationStillThrows) {
  DfzStudyConfig config = small_config();
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::policy_incident());
  // roles off -> invalid_argument, before anything is built.
  EXPECT_THROW((void)run_churn_plan(config, plan), std::invalid_argument);
  config.policy.roles = true;
  config.scenario = AddressingScenario::kLispRlocOnly;
  EXPECT_THROW((void)run_churn_plan(config, plan), std::invalid_argument);
  config.scenario = AddressingScenario::kLegacyBgp;
  // kind still kNone.
  EXPECT_THROW((void)run_churn_plan(config, plan), std::invalid_argument);
}

TEST(ChurnWrappers, PolicyIncidentInsidePlanMatchesRunPolicyEvent) {
  DfzStudyConfig config = small_config();
  config.policy.roles = true;
  config.policy.event.kind = PolicyEvent::Kind::kHijackMoreSpecific;
  config.policy.event.victim_stub = 0;
  config.policy.event.deagg_factor = 2;
  const PolicyEventResult direct = run_policy_event(config);

  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::policy_incident());
  const ChurnPlanResult churn = run_churn_plan(config, plan);
  ASSERT_TRUE(churn.incident.has_value());
  EXPECT_EQ(direct.update_messages, churn.incident->update_messages);
  EXPECT_EQ(direct.route_records, churn.incident->route_records);
  EXPECT_EQ(direct.ases_touched, churn.incident->ases_touched);
  EXPECT_EQ(direct.ases_preferring_actor, churn.incident->ases_preferring_actor);
  EXPECT_EQ(direct.rib_delta, churn.incident->rib_delta);
  EXPECT_EQ(direct.settle_ms, churn.incident->settle_ms);
}

TEST(RouteDeltaApi, BatchGroupingIsObservationallyIdentical) {
  // Splitting one batch into per-delta apply() calls (no run in between)
  // must leave identical converged state and stats.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_as(AsNumber{3}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  graph.add_customer_provider(AsNumber{3}, AsNumber{1});
  const std::vector<RouteDelta> batch = {
      RouteDelta::announce(AsNumber{2}, stub_site_prefixes(0, 1).front()),
      RouteDelta::announce(AsNumber{3}, stub_site_prefixes(1, 1).front()),
      RouteDelta::withdraw(AsNumber{2}, stub_site_prefixes(0, 1).front()),
  };
  BgpFabric grouped(graph);
  grouped.apply(batch);
  grouped.run_to_convergence();
  BgpFabric split(graph);
  for (const RouteDelta& delta : batch) split.apply({delta});
  split.run_to_convergence();

  EXPECT_EQ(grouped.now().ns(), split.now().ns());
  EXPECT_EQ(grouped.total_updates_sent(), split.total_updates_sent());
  EXPECT_EQ(grouped.total_routes_announced(), split.total_routes_announced());
  EXPECT_EQ(grouped.total_routes_withdrawn(), split.total_routes_withdrawn());
  for (AsNumber asn : graph.ases()) {
    EXPECT_EQ(grouped.speaker(asn).rib_size(), split.speaker(asn).rib_size());
    EXPECT_EQ(grouped.speaker(asn).stats().best_changes,
              split.speaker(asn).stats().best_changes);
  }
}

TEST(RouteDeltaApi, AdvanceRequiresIdleEngineAndPositiveDuration) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  BgpFabric fabric(graph);
  EXPECT_THROW(fabric.advance(sim::SimDuration::nanos(-1)),
               std::invalid_argument);
  fabric.apply({RouteDelta::announce(AsNumber{2}, stub_site_prefixes(0, 1).front())});
  EXPECT_THROW(fabric.advance(sim::SimDuration::seconds(1)), std::logic_error);
  fabric.run_to_convergence();
  const auto before = fabric.now();
  fabric.advance(sim::SimDuration::seconds(7));
  EXPECT_EQ((fabric.now() - before).ns(),
            sim::SimDuration::seconds(7).ns());
}

TEST(RouteDeltaApi, LastRunEventsReportsIncrementalCost) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{2}, stub_site_prefixes(0, 1).front())});
  fabric.run_to_convergence();
  const std::uint64_t storm = fabric.last_run_events();
  EXPECT_GT(storm, 0u);
  // A convergent no-op run fires nothing.
  fabric.run_to_convergence();
  EXPECT_EQ(fabric.last_run_events(), 0u);
}

}  // namespace
}  // namespace lispcp::routing
