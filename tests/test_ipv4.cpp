#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ipv4.hpp"

namespace lispcp::net {
namespace {

TEST(Ipv4Address, DefaultIsUnspecified) {
  Ipv4Address a;
  EXPECT_TRUE(a.is_unspecified());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(a.to_string(), "0.0.0.0");
}

TEST(Ipv4Address, OctetConstruction) {
  Ipv4Address a(10, 1, 2, 3);
  EXPECT_EQ(a.value(), 0x0A010203u);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 1);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 3);
}

TEST(Ipv4Address, OctetOutOfRangeThrows) {
  Ipv4Address a(1, 2, 3, 4);
  EXPECT_THROW(a.octet(4), std::out_of_range);
  EXPECT_THROW(a.octet(-1), std::out_of_range);
}

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::parse("192.168.1.255");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Address(192, 168, 1, 255));
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0"), Ipv4Address(0, 0, 0, 0));
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255"), Ipv4Address(255, 255, 255, 255));
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4").has_value());  // leading zero
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4").has_value());
}

TEST(Ipv4Address, FromStringThrowsOnMalformed) {
  EXPECT_THROW(Ipv4Address::from_string("not-an-ip"), std::invalid_argument);
  EXPECT_NO_THROW(Ipv4Address::from_string("10.0.0.1"));
}

TEST(Ipv4Address, RoundTripFormatting) {
  for (const char* text : {"0.0.0.0", "10.0.0.1", "172.16.254.3", "255.255.255.255"}) {
    EXPECT_EQ(Ipv4Address::from_string(text).to_string(), text);
  }
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(Ipv4Address, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address(1, 2, 3, 4));
  set.insert(Ipv4Address(1, 2, 3, 4));
  set.insert(Ipv4Address(4, 3, 2, 1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ipv4Prefix, CanonicalisesHostBits) {
  Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 8);
  EXPECT_EQ(p.address(), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(p, Ipv4Prefix(Ipv4Address(10, 200, 100, 50), 8));
}

TEST(Ipv4Prefix, MaskValues) {
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 0).mask(), 0u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 8).mask(), 0xFF000000u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 24).mask(), 0xFFFFFF00u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(), 32).mask(), 0xFFFFFFFFu);
}

TEST(Ipv4Prefix, InvalidLengthThrows) {
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(), 33), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(), -1), std::invalid_argument);
}

TEST(Ipv4Prefix, ContainsAddress) {
  Ipv4Prefix p = Ipv4Prefix::from_string("100.64.0.0/10");
  EXPECT_TRUE(p.contains(Ipv4Address(100, 64, 0, 1)));
  EXPECT_TRUE(p.contains(Ipv4Address(100, 127, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(100, 128, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 64, 0, 1)));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  Ipv4Prefix wide = Ipv4Prefix::from_string("10.0.0.0/8");
  Ipv4Prefix narrow = Ipv4Prefix::from_string("10.1.0.0/16");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(wide));
  EXPECT_FALSE(wide.contains(Ipv4Prefix::from_string("11.0.0.0/16")));
}

TEST(Ipv4Prefix, DefaultRouteContainsEverything) {
  Ipv4Prefix def;
  EXPECT_EQ(def.length(), 0);
  EXPECT_TRUE(def.contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(def.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_EQ(def.size(), std::uint64_t{1} << 32);
}

TEST(Ipv4Prefix, Nth) {
  Ipv4Prefix p = Ipv4Prefix::from_string("100.64.3.0/24");
  EXPECT_EQ(p.nth(0), Ipv4Address(100, 64, 3, 0));
  EXPECT_EQ(p.nth(10), Ipv4Address(100, 64, 3, 10));
  EXPECT_EQ(p.nth(255), Ipv4Address(100, 64, 3, 255));
  EXPECT_THROW(p.nth(256), std::out_of_range);
}

TEST(Ipv4Prefix, HostPrefix) {
  auto p = Ipv4Prefix::host(Ipv4Address(1, 2, 3, 4));
  EXPECT_EQ(p.length(), 32);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_FALSE(p.contains(Ipv4Address(1, 2, 3, 5)));
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/8x").has_value());
}

TEST(Ipv4Prefix, RoundTripFormatting) {
  EXPECT_EQ(Ipv4Prefix::from_string("10.0.0.0/8").to_string(), "10.0.0.0/8");
  EXPECT_EQ(Ipv4Prefix::from_string("0.0.0.0/0").to_string(), "0.0.0.0/0");
}

TEST(Ipv4Prefix, HashDistinguishesLengths) {
  std::unordered_set<Ipv4Prefix> set;
  set.insert(Ipv4Prefix::from_string("10.0.0.0/8"));
  set.insert(Ipv4Prefix::from_string("10.0.0.0/16"));
  set.insert(Ipv4Prefix::from_string("10.0.0.0/8"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace lispcp::net
