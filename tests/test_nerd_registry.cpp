// MappingRegistry and NERD push-database tests.
#include <gtest/gtest.h>

#include "mapping/nerd.hpp"
#include "mapping/registry.hpp"
#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

lisp::MapEntry site(int i) {
  lisp::MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix(
      net::Ipv4Address(100, 64, static_cast<std::uint8_t>(i), 0), 24);
  entry.rlocs = {lisp::Rloc{
      net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i), 1), 1, 100, true}};
  return entry;
}

TEST(MappingRegistry, RegisterAndLookup) {
  mapping::MappingRegistry registry;
  registry.register_site(site(1));
  registry.register_site(site(2));
  EXPECT_EQ(registry.size(), 2u);

  const auto* found = registry.lookup(net::Ipv4Address(100, 64, 1, 77));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->rlocs[0].address, net::Ipv4Address(10, 0, 1, 1));
  EXPECT_EQ(registry.lookup(net::Ipv4Address(100, 64, 9, 1)), nullptr);
}

TEST(MappingRegistry, VersionsAreMonotonic) {
  mapping::MappingRegistry registry;
  registry.register_site(site(1));
  registry.register_site(site(2));
  const auto* first = registry.find(site(1).eid_prefix);
  const auto* second = registry.find(site(2).eid_prefix);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_LT(first->version, second->version);

  const auto new_version = registry.update_rlocs(
      site(1).eid_prefix,
      {lisp::Rloc{net::Ipv4Address(10, 0, 1, 2), 1, 100, true}});
  EXPECT_GT(new_version, second->version);
  EXPECT_EQ(registry.find(site(1).eid_prefix)->rlocs[0].address,
            net::Ipv4Address(10, 0, 1, 2));
}

TEST(MappingRegistry, UpdateUnknownPrefixReturnsZero) {
  mapping::MappingRegistry registry;
  EXPECT_EQ(registry.update_rlocs(site(5).eid_prefix, {}), 0u);
}

TEST(MappingRegistry, AllReturnsEverything) {
  mapping::MappingRegistry registry;
  for (int i = 0; i < 10; ++i) registry.register_site(site(i));
  EXPECT_EQ(registry.all().size(), 10u);
}

// --- NERD over a live topology ----------------------------------------------

scenario::ExperimentConfig nerd_config() {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kNerd);
  config.spec.domains = 8;
  config.spec.hosts_per_domain = 1;
  config.spec.nerd_push_interval = sim::SimDuration::seconds(30);
  config.spec.seed = 5;
  config.traffic.sessions_per_second = 5;
  config.traffic.duration = sim::SimDuration::seconds(20);
  return config;
}

TEST(Nerd, BootstrapPushFillsEveryItr) {
  scenario::Experiment experiment(nerd_config());
  auto& internet = experiment.internet();
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(1));
  for (auto& dom : internet.domains()) {
    for (auto* xtr : dom.xtrs) {
      // Every site's mapping is present (own site excluded from use but
      // included in the database).
      EXPECT_EQ(xtr->cache().size(), internet.registry().size())
          << dom.name;
      EXPECT_GT(xtr->stats().entry_pushes_received, 0u);
    }
  }
  EXPECT_EQ(internet.nerd()->stats().full_pushes, 1u);
}

TEST(Nerd, StaleMappingUntilNextDeltaPush) {
  scenario::Experiment experiment(nerd_config());
  auto& internet = experiment.internet();
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(1));

  // Change domain 3's mapping: its traffic should now enter via xtr is the
  // same (single provider), so emulate a renumbering to a bogus RLOC and
  // check propagation timing.
  auto changed = *internet.registry().find(internet.domain(3).eid_prefix);
  changed.rlocs[0].priority = 3;  // observable change
  changed.version += 1000;
  internet.nerd()->submit_update(changed);

  // Before the periodic push: consumers still hold the old record.
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(5));
  const auto probe_eid = internet.domain(3).hosts[0]->address();
  auto before = internet.domain(0).xtrs[0]->cache().lookup(
      probe_eid, internet.sim().now());
  ASSERT_TRUE(before != nullptr);
  EXPECT_EQ(before->rlocs[0].priority, 1);

  // After the push interval: the delta arrived.
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(30));
  auto after = internet.domain(0).xtrs[0]->cache().lookup(
      probe_eid, internet.sim().now());
  ASSERT_TRUE(after != nullptr);
  EXPECT_EQ(after->rlocs[0].priority, 3);
  EXPECT_EQ(internet.nerd()->stats().delta_pushes, 1u);
}

TEST(Nerd, ChunkingCoversLargeDatabases) {
  sim::Simulator sim;
  sim::Network net(sim);
  mapping::NerdConfig cfg;
  cfg.chunk_size = 16;
  auto& authority = net.make<mapping::NerdAuthority>(
      "nerd", net::Ipv4Address(192, 0, 4, 1), cfg);

  lisp::XtrConfig xcfg;
  xcfg.eid_space = {net::Ipv4Prefix::from_string("100.64.0.0/10")};
  auto& consumer = net.make<lisp::TunnelRouter>(
      "itr", net::Ipv4Address(10, 0, 0, 1), xcfg);
  net.connect(authority.id(), consumer.id());
  net.add_host_route(authority.id(), consumer.rloc(), consumer.id());

  std::vector<lisp::MapEntry> db;
  for (int i = 0; i < 100; ++i) db.push_back(site(i));
  authority.load_database(db);
  authority.subscribe(consumer.rloc());
  authority.push_full();
  sim.run();

  EXPECT_EQ(consumer.cache().size(), 100u);
  // 100 entries / 16 per chunk = 7 push packets.
  EXPECT_EQ(consumer.stats().entry_pushes_received, 7u);
  EXPECT_EQ(authority.stats().entries_pushed, 100u);
}

TEST(Nerd, NoResolutionPathMeansNoDropsEver) {
  scenario::Experiment experiment(nerd_config());
  const auto summary = experiment.run();
  ASSERT_GT(summary.sessions, 20u);
  EXPECT_EQ(summary.miss_events, 0u);
  EXPECT_EQ(summary.miss_drops, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
}

}  // namespace
}  // namespace lispcp
