#include <gtest/gtest.h>

#include <algorithm>

#include "lisp/map_cache.hpp"

#include "sim/rng.hpp"

namespace lispcp::lisp {
namespace {

MapEntry entry_for(int i, std::uint32_t ttl = 900) {
  MapEntry entry;
  entry.eid_prefix = net::Ipv4Prefix(
      net::Ipv4Address(100, 64, static_cast<std::uint8_t>(i), 0), 24);
  entry.rlocs = {Rloc{net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i), 1),
                      1, 100, true}};
  entry.ttl_seconds = ttl;
  return entry;
}

net::Ipv4Address eid_in(int i) {
  return net::Ipv4Address(100, 64, static_cast<std::uint8_t>(i), 10);
}

sim::SimTime at_seconds(int s) {
  return sim::SimTime::zero() + sim::SimDuration::seconds(s);
}

TEST(MapCache, MissOnEmpty) {
  MapCache cache;
  EXPECT_FALSE(cache.lookup(eid_in(1), at_seconds(0)) != nullptr);
  EXPECT_EQ(cache.stats().misses_absent, 1u);
  EXPECT_EQ(cache.stats().lookups, 1u);
}

TEST(MapCache, HitAfterInsert) {
  MapCache cache;
  cache.insert(entry_for(1), at_seconds(0));
  auto hit = cache.lookup(eid_in(1), at_seconds(1));
  ASSERT_TRUE(hit != nullptr);
  EXPECT_EQ(hit->eid_prefix, entry_for(1).eid_prefix);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 1.0);
}

TEST(MapCache, LongestPrefixMatchWithinCache) {
  MapCache cache;
  MapEntry wide;
  wide.eid_prefix = net::Ipv4Prefix::from_string("100.64.0.0/16");
  wide.rlocs = {Rloc{net::Ipv4Address(10, 9, 9, 9), 1, 100, true}};
  cache.insert(wide, at_seconds(0));
  cache.insert(entry_for(1), at_seconds(0));

  auto specific = cache.lookup(eid_in(1), at_seconds(1));
  ASSERT_TRUE(specific != nullptr);
  EXPECT_EQ(specific->rlocs[0].address, net::Ipv4Address(10, 0, 1, 1));

  auto fallback = cache.lookup(eid_in(7), at_seconds(1));
  ASSERT_TRUE(fallback != nullptr);
  EXPECT_EQ(fallback->rlocs[0].address, net::Ipv4Address(10, 9, 9, 9));
}

TEST(MapCache, TtlExpiryCountsAsExpiredMiss) {
  MapCache cache;
  cache.insert(entry_for(1, /*ttl=*/60), at_seconds(0));
  EXPECT_TRUE(cache.lookup(eid_in(1), at_seconds(59)) != nullptr);
  EXPECT_FALSE(cache.lookup(eid_in(1), at_seconds(60)) != nullptr);
  EXPECT_EQ(cache.stats().misses_expired, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entry removed
}

TEST(MapCache, ReinsertRefreshesTtl) {
  MapCache cache;
  cache.insert(entry_for(1, 60), at_seconds(0));
  cache.insert(entry_for(1, 60), at_seconds(50));
  EXPECT_TRUE(cache.lookup(eid_in(1), at_seconds(100)) != nullptr);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().updates, 1u);
}

TEST(MapCache, LruEvictionAtCapacity) {
  MapCache cache(3);
  cache.insert(entry_for(1), at_seconds(0));
  cache.insert(entry_for(2), at_seconds(0));
  cache.insert(entry_for(3), at_seconds(0));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(eid_in(1), at_seconds(1)) != nullptr);
  cache.insert(entry_for(4), at_seconds(2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(eid_in(1), at_seconds(3)) != nullptr);
  EXPECT_FALSE(cache.lookup(eid_in(2), at_seconds(3)) != nullptr);
  EXPECT_TRUE(cache.lookup(eid_in(3), at_seconds(3)) != nullptr);
  EXPECT_TRUE(cache.lookup(eid_in(4), at_seconds(3)) != nullptr);
}

TEST(MapCache, UnlimitedCapacityNeverEvicts) {
  MapCache cache(0);
  for (int i = 0; i < 200; ++i) cache.insert(entry_for(i % 250), at_seconds(0));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(MapCache, EraseRemovesEntry) {
  MapCache cache;
  cache.insert(entry_for(1), at_seconds(0));
  EXPECT_TRUE(cache.erase(entry_for(1).eid_prefix));
  EXPECT_FALSE(cache.erase(entry_for(1).eid_prefix));
  EXPECT_FALSE(cache.lookup(eid_in(1), at_seconds(1)) != nullptr);
}

TEST(MapCache, ReachabilityUpdateByPrefix) {
  MapCache cache;
  cache.insert(entry_for(1), at_seconds(0));
  EXPECT_TRUE(cache.set_rloc_reachability(entry_for(1).eid_prefix,
                                          net::Ipv4Address(10, 0, 1, 1), false));
  auto entry = cache.lookup(eid_in(1), at_seconds(1));
  ASSERT_TRUE(entry != nullptr);
  EXPECT_FALSE(entry->rlocs[0].reachable);
  EXPECT_FALSE(cache.set_rloc_reachability(entry_for(2).eid_prefix,
                                           net::Ipv4Address(10, 0, 2, 1), false));
}

TEST(MapCache, ReachabilityUpdateAcrossAllEntries) {
  MapCache cache;
  MapEntry a = entry_for(1);
  MapEntry b = entry_for(2);
  const auto shared_rloc = net::Ipv4Address(10, 5, 5, 5);
  a.rlocs.push_back(Rloc{shared_rloc, 2, 100, true});
  b.rlocs.push_back(Rloc{shared_rloc, 2, 100, true});
  cache.insert(a, at_seconds(0));
  cache.insert(b, at_seconds(0));
  EXPECT_EQ(cache.set_rloc_reachability_all(shared_rloc, false), 2u);
  EXPECT_EQ(cache.set_rloc_reachability_all(shared_rloc, false), 0u);  // idempotent
}

TEST(MapCache, ClearResetsContents) {
  MapCache cache;
  cache.insert(entry_for(1), at_seconds(0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(eid_in(1), at_seconds(1)) != nullptr);
}

/// Property sweep: with a Zipf-skewed reference stream, the hit ratio must
/// increase monotonically with capacity (the E1 mechanism).
class MapCacheCapacityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapCacheCapacityProperty, HitRatioGrowsWithCapacity) {
  const std::size_t capacity = GetParam();
  sim::Rng rng(99);
  sim::ZipfDistribution zipf(200, 0.9);
  MapCache cache(capacity);
  for (int i = 0; i < 20'000; ++i) {
    const int site = static_cast<int>(zipf(rng));
    const auto now = at_seconds(i / 100);
    if (cache.lookup(eid_in(site % 250), now) == nullptr) {
      cache.insert(entry_for(site % 250), now);
    }
  }
  // Reference ratios computed once and pinned loosely: more capacity, more hits.
  static double previous_ratio = -1.0;
  EXPECT_GT(cache.stats().hit_ratio(), previous_ratio);
  previous_ratio = cache.stats().hit_ratio();
  if (capacity >= 200) {
    EXPECT_GT(cache.stats().hit_ratio(), 0.98);  // everything fits
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, MapCacheCapacityProperty,
                         ::testing::Values(4, 16, 64, 200));

// --- Reverse RLOC index (locator-flap hot path) -----------------------------

MapEntry shared_rloc_entry(int i, net::Ipv4Address rloc) {
  MapEntry entry = entry_for(i);
  entry.rlocs = {Rloc{rloc, 1, 100, true},
                 Rloc{net::Ipv4Address(10, 9, static_cast<std::uint8_t>(i), 1),
                      2, 100, true}};
  return entry;
}

TEST(MapCacheRlocIndex, FlapTouchesOnlyReferencingEntries) {
  MapCache cache;
  const net::Ipv4Address shared(10, 0, 0, 99);
  cache.insert(shared_rloc_entry(1, shared), at_seconds(0));
  cache.insert(shared_rloc_entry(2, shared), at_seconds(0));
  cache.insert(entry_for(3), at_seconds(0));  // does not reference `shared`

  EXPECT_EQ(cache.entries_referencing(shared), 2u);
  EXPECT_EQ(cache.set_rloc_reachability_all(shared, false), 2u);
  // Idempotent: already down, nothing flips.
  EXPECT_EQ(cache.set_rloc_reachability_all(shared, false), 0u);
  EXPECT_EQ(cache.set_rloc_reachability_all(shared, true), 2u);
  // Unknown locator: no entries, no work.
  EXPECT_EQ(cache.set_rloc_reachability_all(net::Ipv4Address(10, 0, 0, 98),
                                            false),
            0u);
}

TEST(MapCacheRlocIndex, EraseAndReplaceMaintainTheIndex) {
  MapCache cache;
  const net::Ipv4Address shared(10, 0, 0, 99);
  cache.insert(shared_rloc_entry(1, shared), at_seconds(0));
  cache.insert(shared_rloc_entry(2, shared), at_seconds(0));
  cache.erase(shared_rloc_entry(1, shared).eid_prefix);
  EXPECT_EQ(cache.entries_referencing(shared), 1u);

  // Replacing an entry with a different locator set must unindex the old
  // RLOCs — otherwise a later flap would chase stale prefixes.
  cache.insert(entry_for(2), at_seconds(1));
  EXPECT_EQ(cache.entries_referencing(shared), 0u);
  EXPECT_EQ(cache.set_rloc_reachability_all(shared, false), 0u);

  cache.clear();
  EXPECT_TRUE(cache.distinct_rlocs().empty());
}

TEST(MapCacheRlocIndex, DistinctRlocsMatchesLiveEntries) {
  MapCache cache;
  const net::Ipv4Address shared(10, 0, 0, 99);
  cache.insert(shared_rloc_entry(1, shared), at_seconds(0));
  cache.insert(shared_rloc_entry(2, shared), at_seconds(0));
  auto rlocs = cache.distinct_rlocs();
  // `shared` plus the two per-entry secondaries.
  EXPECT_EQ(rlocs.size(), 3u);
  EXPECT_NE(std::find(rlocs.begin(), rlocs.end(), shared), rlocs.end());
}

TEST(MapCacheRlocIndex, EvictionUnindexesTheVictim) {
  MapCache cache(/*capacity=*/1);
  const net::Ipv4Address shared(10, 0, 0, 99);
  cache.insert(shared_rloc_entry(1, shared), at_seconds(0));
  cache.insert(entry_for(2), at_seconds(0));  // evicts entry 1 (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.entries_referencing(shared), 0u);
}

}  // namespace
}  // namespace lispcp::lisp
