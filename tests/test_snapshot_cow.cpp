// Copy-on-write world snapshots (core::SnapshotCache consumers): points
// sharing a shape must fork one immutable snapshot inside a scope, builds
// must stay private outside any scope, and mutating one forked point must
// never leak into a sibling.
#include <gtest/gtest.h>

#include "routing/as_graph.hpp"
#include "routing/dfz_study.hpp"
#include "topo/blueprint.hpp"
#include "topo/internet.hpp"

namespace lispcp {
namespace {

routing::SyntheticInternetConfig small_internet() {
  routing::SyntheticInternetConfig config;
  config.tier1_count = 3;
  config.transit_count = 4;
  config.stub_count = 20;
  return config;
}

TEST(SnapshotCow, GraphSharedInsideScopePrivateOutside) {
  const auto config = small_internet();
  {
    routing::SyntheticInternetScope scope;
    const auto a = routing::shared_synthetic_internet(config);
    const auto b = routing::shared_synthetic_internet(config);
    EXPECT_EQ(a.get(), b.get()) << "same config must fork one snapshot";

    auto other = config;
    other.seed = 99;
    const auto c = routing::shared_synthetic_internet(other);
    EXPECT_NE(a.get(), c.get()) << "different config must not share";
    EXPECT_EQ(c->size(), a->size());
  }
  // Outside any scope: private builds, nothing retained.
  const auto d = routing::shared_synthetic_internet(config);
  const auto e = routing::shared_synthetic_internet(config);
  EXPECT_NE(d.get(), e.get());
  EXPECT_EQ(d->size(), e->size());
  EXPECT_EQ(d->edge_count(), e->edge_count());
}

TEST(SnapshotCow, ForkedDfzPointsAreIsolated) {
  routing::DfzStudyConfig config;
  config.internet = small_internet();

  routing::SyntheticInternetScope scope;
  const auto baseline = routing::run_dfz_study(config);

  // A sibling fork that mutates aggressively: the churn study converges,
  // withdraws a site, and re-announces it over the *shared* graph.
  (void)routing::run_rehoming_churn(config);

  const auto repeat = routing::run_dfz_study(config);
  EXPECT_EQ(baseline.dfz_table_size, repeat.dfz_table_size);
  EXPECT_EQ(baseline.max_rib_size, repeat.max_rib_size);
  EXPECT_EQ(baseline.update_messages, repeat.update_messages);
  EXPECT_EQ(baseline.route_records, repeat.route_records);
  EXPECT_EQ(baseline.convergence_ms, repeat.convergence_ms);
}

TEST(SnapshotCow, BlueprintTablesMatchTheFormulasTheyReplace) {
  const topo::BlueprintShape shape{5, 3, 4};
  const topo::Blueprint blueprint(shape);
  EXPECT_EQ(blueprint.host_name(2, 1).to_string(), "h1.d2.example");
  EXPECT_EQ(blueprint.host_name(4, 0).to_string(), "h0.d4.example");
  ASSERT_EQ(blueprint.site_prefixes(0).size(), 4u);
  EXPECT_EQ(blueprint.site_prefixes(0).front().length(), 26);

  const auto dests = blueprint.destination_names(1);
  ASSERT_EQ(dests.size(), 4u * 3u);  // (domains - 1) * hosts, host-major
  EXPECT_EQ(dests.front().to_string(), "h0.d0.example");
  EXPECT_EQ(dests[1].to_string(), "h0.d2.example");
}

TEST(SnapshotCow, BlueprintSharedAcrossSameShapeInternets) {
  topo::InternetSpec spec;
  spec.domains = 3;
  spec.hosts_per_domain = 2;

  topo::BlueprintScope scope;
  topo::Internet a(spec);
  topo::Internet b(spec);
  EXPECT_EQ(a.blueprint().get(), b.blueprint().get());

  auto wider = spec;
  wider.hosts_per_domain = 4;
  topo::Internet c(wider);
  EXPECT_NE(a.blueprint().get(), c.blueprint().get());

  // Isolation: driving one fork's clock and sessions must not disturb a
  // sibling's view of the shared tables.
  const auto before = b.destination_names(0);
  a.domain(0).hosts[0]->start_session(a.host_name(1, 0));
  a.sim().run_until(a.sim().now() + sim::SimDuration::seconds(5));
  const auto after = b.destination_names(0);
  EXPECT_EQ(before, after);
  EXPECT_EQ(a.host_eid(1, 1), b.host_eid(1, 1));
}

}  // namespace
}  // namespace lispcp
