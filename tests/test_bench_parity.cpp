// Bench-record parity pins: reduced in-process replicas of the F2, F1 and
// E4 bench sweeps, each run at --jobs 1 vs 4 (and, for the sharded BGP
// engine, --shards 1 vs 8), with the resulting ResultSets compared for
// byte-identical JSON.  This is the perf program's core contract — flat
// RIBs, arena-backed queues, recycled update buffers and copy-on-write
// topology snapshots are allowed to change *when* work happens, never
// *what* the records say — pinned where a failure bisects in-process
// instead of as a CI artifact diff.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenario/dfz_adapter.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::scenario {
namespace {

using topo::ControlPlaneKind;

/// Serialises a ResultSet the same way the bench --json sink does, so
/// "byte-identical" here means the same thing CI's artifact diff means.
std::string json_bytes(const ResultSet& results) {
  std::ostringstream os;
  results.to_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// F2 — DFZ scaling on the sharded BGP convergence engine
// ---------------------------------------------------------------------------

/// A scaled-down F2a: both addressing scenarios across two stub-site
/// counts, exactly the bench's axes with smaller values.
SweepSpec f2_mini(std::size_t shards) {
  SweepSpec spec;
  spec.named("F2-mini")
      .base([](ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 3;
        config.dfz.internet.transit_count = 4;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 7;
        config.spec.seed = config.dfz.internet.seed;
      })
      .base(dfz::sharded(shards, 1))
      .axis(dfz::scenarios())
      .axis(dfz::stub_sites({24, 48}));
  return spec;
}

ResultSet run_f2(std::size_t shards, std::size_t jobs) {
  Runner runner(f2_mini(shards));
  runner.execute(dfz::run_study);
  RunOptions options;
  options.jobs = jobs;
  return runner.run(options);
}

TEST(BenchParity, F2RecordsIdenticalAcrossJobsAndShards) {
  const ResultSet baseline = run_f2(/*shards=*/1, /*jobs=*/1);
  ASSERT_FALSE(baseline.records().empty());

  // Partitioning the AS graph across 8 shards and fanning points across 4
  // worker threads must not perturb one byte of the emitted records.
  const ResultSet sharded = run_f2(/*shards=*/8, /*jobs=*/1);
  const ResultSet parallel = run_f2(/*shards=*/1, /*jobs=*/4);
  const ResultSet both = run_f2(/*shards=*/8, /*jobs=*/4);

  const std::string want = json_bytes(baseline);
  EXPECT_EQ(baseline, sharded);
  EXPECT_EQ(baseline, parallel);
  EXPECT_EQ(baseline, both);
  EXPECT_EQ(want, json_bytes(sharded));
  EXPECT_EQ(want, json_bytes(parallel));
  EXPECT_EQ(want, json_bytes(both));
}

TEST(BenchParity, F2ChurnRecordsIdenticalAcrossShards) {
  auto churn = [](std::size_t shards) {
    SweepSpec spec;
    spec.named("F2-churn-mini")
        .base([](ExperimentConfig& config) {
          config.dfz.internet.tier1_count = 3;
          config.dfz.internet.transit_count = 4;
          config.dfz.internet.stub_count = 24;
          config.dfz.internet.providers_per_stub = 2;
          config.dfz.internet.seed = 7;
          config.spec.seed = config.dfz.internet.seed;
        })
        .base(dfz::sharded(shards, 1))
        .axis(dfz::scenarios());
    Runner runner(std::move(spec));
    runner.execute(dfz::run_churn);
    return runner.run();
  };
  const ResultSet one = churn(1);
  const ResultSet eight = churn(8);
  ASSERT_FALSE(one.records().empty());
  EXPECT_EQ(one, eight);
  EXPECT_EQ(json_bytes(one), json_bytes(eight));
}

// ---------------------------------------------------------------------------
// F1 / E4 — simulator-backed sweeps (flat RIB + arena + CoW path)
// ---------------------------------------------------------------------------

/// A scaled-down F1a: de-aggregation axis crossed with two control planes
/// on the bench's topology shape, with a shorter workload.
ResultSet run_f1(std::size_t jobs) {
  SweepSpec spec;
  spec.named("F1-mini")
      .base([](ExperimentConfig& config) {
        config.spec.domains = 8;
        config.spec.hosts_per_domain = 4;
        config.spec.providers_per_domain = 2;
        config.spec.cache_capacity = 24;
        config.spec.mapping_ttl_seconds = 120;
        config.spec.seed = 12;
        config.traffic.sessions_per_second = 20;
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.traffic.zipf_alpha = 0.8;
        config.drain = sim::SimDuration::seconds(10);
      })
      .axis(Axis::integers("deagg factor", {1, 4},
                           [](ExperimentConfig& config, std::uint64_t v) {
                             config.spec.deaggregation_factor =
                                 static_cast<std::size_t>(v);
                           }))
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce}));
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("drops", s.miss_drops);
    record.set_int("encapsulated", s.encapsulated);
    record.set_real("t_setup mean (ms)", s.t_setup_mean_ms);
  });
  RunOptions options;
  options.jobs = jobs;
  return runner.run(options);
}

TEST(BenchParity, F1RecordsIdenticalAcrossJobs) {
  const ResultSet serial = run_f1(1);
  const ResultSet parallel = run_f1(4);
  ASSERT_FALSE(serial.records().empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(json_bytes(serial), json_bytes(parallel));
}

/// A scaled-down E4a: the ingress-TE policy comparison on the bench's
/// topology shape.  Probe fields come from the summary rather than the
/// bench's link-window probe — parity is about record stability, and the
/// summary path crosses every subsystem the perf work touched.
ResultSet run_e4(std::size_t jobs) {
  SweepSpec spec;
  spec.named("E4-mini")
      .base([](ExperimentConfig& config) {
        config.spec.domains = 10;
        config.spec.hosts_per_domain = 2;
        config.spec.providers_per_domain = 2;
        config.spec.seed = 4;
        config.traffic.sessions_per_second = 30;
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.traffic.zipf_alpha = 0.8;
        config.drain = sim::SimDuration::seconds(10);
      })
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltQueue, ControlPlaneKind::kPce}));
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("established", s.established);
    record.set_int("encapsulated", s.encapsulated);
    record.set_real("t_dns mean (ms)", s.t_dns_mean_ms);
    record.set_real("t_setup p99 (ms)", s.t_setup_p99_ms);
  });
  RunOptions options;
  options.jobs = jobs;
  return runner.run(options);
}

TEST(BenchParity, E4RecordsIdenticalAcrossJobs) {
  const ResultSet serial = run_e4(1);
  const ResultSet parallel = run_e4(4);
  ASSERT_FALSE(serial.records().empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(json_bytes(serial), json_bytes(parallel));
}

}  // namespace
}  // namespace lispcp::scenario
