// Fabric tests: links (delay, serialization, queue, loss), forwarding
// (LPM routes, TTL, no-route), Dijkstra route installation, tracer hooks.
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace lispcp::sim {
namespace {

/// Endpoint that records delivered packets with timestamps.
class Sink : public Node {
 public:
  Sink(Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }
  void deliver(net::Packet packet) override {
    arrival_times.push_back(sim().now());
    packets.push_back(std::move(packet));
  }
  std::vector<SimTime> arrival_times;
  std::vector<net::Packet> packets;
};

net::Packet make_packet(net::Ipv4Address src, net::Ipv4Address dst,
                        std::size_t payload = 100) {
  return net::Packet::udp(src, dst, 1111, 2222,
                          std::make_shared<net::RawPayload>(payload));
}

struct Fixture {
  Simulator sim;
  Network net{sim};
};

TEST(Link, DeliversAfterPropagationAndSerialization) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.delay = SimDuration::millis(10);
  cfg.bandwidth_bps = 8e6;  // 1 byte/us
  f.net.connect(a.id(), b.id(), cfg);
  f.net.add_host_route(a.id(), b.address(), b.id());

  a.send(make_packet(a.address(), b.address(), 100));  // 128 bytes on wire
  f.sim.run();
  ASSERT_EQ(b.packets.size(), 1u);
  // 128 B at 1 B/us = 128 us serialization + 10 ms propagation.
  EXPECT_EQ(b.arrival_times[0],
            SimTime::zero() + SimDuration::millis(10) + SimDuration::micros(128));
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.delay = SimDuration::millis(1);
  cfg.bandwidth_bps = 8e6;
  f.net.connect(a.id(), b.id(), cfg);
  f.net.add_host_route(a.id(), b.address(), b.id());

  a.send(make_packet(a.address(), b.address(), 972));  // 1000 B = 1 ms tx
  a.send(make_packet(a.address(), b.address(), 972));
  f.sim.run();
  ASSERT_EQ(b.packets.size(), 2u);
  EXPECT_EQ((b.arrival_times[1] - b.arrival_times[0]).ms(), 1.0);
}

TEST(Link, DropTailQueueOverflow) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.queue_bytes = 2000;  // two ~1000B packets of backlog
  Link& link = f.net.connect(a.id(), b.id(), cfg);
  f.net.add_host_route(a.id(), b.address(), b.id());

  for (int i = 0; i < 10; ++i) {
    a.send(make_packet(a.address(), b.address(), 972));
  }
  f.sim.run();
  EXPECT_LT(b.packets.size(), 10u);
  EXPECT_GT(link.stats(a.id()).drops_queue, 0u);
  EXPECT_EQ(b.packets.size() + link.stats(a.id()).drops_queue, 10u);
  EXPECT_EQ(f.net.counters().drops_queue, link.stats(a.id()).drops_queue);
}

TEST(Link, RandomLossDropsApproximatelyAtRate) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.loss = 0.3;
  cfg.bandwidth_bps = 1e12;  // effectively no queueing
  f.net.connect(a.id(), b.id(), cfg);
  f.net.add_host_route(a.id(), b.address(), b.id());

  const int n = 5000;
  for (int i = 0; i < n; ++i) a.send(make_packet(a.address(), b.address(), 10));
  f.sim.run();
  const double delivery_rate = static_cast<double>(b.packets.size()) / n;
  EXPECT_NEAR(delivery_rate, 0.7, 0.03);
}

TEST(Link, DownLinkDropsEverything) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  Link& link = f.net.connect(a.id(), b.id());
  f.net.add_host_route(a.id(), b.address(), b.id());
  link.set_up(false);
  a.send(make_packet(a.address(), b.address()));
  f.sim.run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(f.net.counters().drops_link_down, 1u);
}

TEST(Link, UtilizationWindow) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  Link& link = f.net.connect(a.id(), b.id(), cfg);
  f.net.add_host_route(a.id(), b.address(), b.id());

  auto window = link.open_window(a.id());
  // 1000 B over 8 Mbit/s = 1 ms busy; observe over 10 ms => 10% utilization.
  a.send(make_packet(a.address(), b.address(), 972));
  f.sim.run_until(SimTime::zero() + SimDuration::millis(10));
  EXPECT_NEAR(link.utilization(a.id(), window), 0.1, 0.01);
  EXPECT_EQ(link.bytes_in_window(a.id(), window), 1000u);
}

TEST(Network, MultiHopForwardingDecrementsTtl) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& r1 = f.net.make<Node>("r1");
  auto& r2 = f.net.make<Node>("r2");
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  f.net.connect(a.id(), r1.id());
  f.net.connect(r1.id(), r2.id());
  f.net.connect(r2.id(), b.id());
  f.net.add_host_route(a.id(), b.address(), r1.id());
  f.net.add_host_route(r1.id(), b.address(), r2.id());
  f.net.add_host_route(r2.id(), b.address(), b.id());

  auto p = make_packet(a.address(), b.address());
  p.outer_ip().ttl = 64;
  a.send(std::move(p));
  f.sim.run();
  ASSERT_EQ(b.packets.size(), 1u);
  // Originating hop does not decrement; two forwarding hops do.
  EXPECT_EQ(b.packets[0].outer_ip().ttl, 62);
}

TEST(Network, TtlExpiryDrops) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& r1 = f.net.make<Node>("r1");
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  f.net.connect(a.id(), r1.id());
  f.net.connect(r1.id(), b.id());
  f.net.add_host_route(a.id(), b.address(), r1.id());
  f.net.add_host_route(r1.id(), b.address(), b.id());

  auto p = make_packet(a.address(), b.address());
  p.outer_ip().ttl = 1;
  a.send(std::move(p));
  f.sim.run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(f.net.counters().drops_ttl, 1u);
}

TEST(Network, NoRouteDropsAndCounts) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  f.net.connect(a.id(), b.id());
  // No route installed at a.
  a.send(make_packet(a.address(), b.address()));
  f.sim.run();
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(f.net.counters().drops_no_route, 1u);
}

TEST(Network, LoopbackDeliversLocally) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  a.send(make_packet(a.address(), a.address()));
  f.sim.run();
  EXPECT_EQ(a.packets.size(), 1u);
}

TEST(Network, RouteToNonAdjacentNextHopThrows) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  EXPECT_THROW(f.net.add_host_route(a.id(), b.address(), b.id()),
               std::logic_error);
}

TEST(Network, DuplicateAddressThrows) {
  Fixture f;
  f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  EXPECT_THROW(f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 1)),
               std::logic_error);
}

TEST(Network, SelfLinkAndDuplicateLinkThrow) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  EXPECT_THROW(f.net.connect(a.id(), a.id()), std::invalid_argument);
  f.net.connect(a.id(), b.id());
  EXPECT_THROW(f.net.connect(a.id(), b.id()), std::logic_error);
  EXPECT_THROW(f.net.connect(b.id(), a.id()), std::logic_error);
}

TEST(Network, InstallRoutesTowardFollowsShortestDelayPath) {
  Fixture f;
  // Diamond: a - (fast) - r1 - target, a - (slow) - r2 - target.
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& r1 = f.net.make<Node>("r1");
  auto& r2 = f.net.make<Node>("r2");
  auto& target = f.net.make<Sink>("t", net::Ipv4Address(9, 0, 0, 1));
  LinkConfig fast;
  fast.delay = SimDuration::millis(1);
  LinkConfig slow;
  slow.delay = SimDuration::millis(50);
  f.net.connect(a.id(), r1.id(), fast);
  f.net.connect(a.id(), r2.id(), slow);
  f.net.connect(r1.id(), target.id(), fast);
  f.net.connect(r2.id(), target.id(), fast);

  f.net.install_routes_toward(target.id(),
                              net::Ipv4Prefix::host(target.address()));
  a.send(make_packet(a.address(), target.address()));
  f.sim.run();
  ASSERT_EQ(target.packets.size(), 1u);
  // Via r1: 2 ms total, not 51 ms.
  EXPECT_LT(target.arrival_times[0], SimTime::zero() + SimDuration::millis(5));
}

TEST(Network, InstallRoutesScopeRestrictsInstallation) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  auto& target = f.net.make<Sink>("t", net::Ipv4Address(9, 0, 0, 1));
  f.net.connect(a.id(), target.id());
  f.net.connect(b.id(), target.id());
  f.net.install_routes_toward(target.id(),
                              net::Ipv4Prefix::host(target.address()),
                              {a.id()});  // scope excludes b
  a.send(make_packet(a.address(), target.address()));
  b.send(make_packet(b.address(), target.address()));
  f.sim.run();
  EXPECT_EQ(target.packets.size(), 1u);
  EXPECT_EQ(f.net.counters().drops_no_route, 1u);
}

TEST(Network, PathDelayMatchesTopology) {
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& r = f.net.make<Node>("r");
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  LinkConfig cfg;
  cfg.delay = SimDuration::millis(7);
  f.net.connect(a.id(), r.id(), cfg);
  f.net.connect(r.id(), b.id(), cfg);
  auto delay = f.net.path_delay(a.id(), b.id());
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(*delay, SimDuration::millis(14));
  EXPECT_EQ(f.net.path_delay(a.id(), a.id()), SimDuration{});

  auto& island = f.net.make<Sink>("x", net::Ipv4Address(1, 0, 0, 3));
  EXPECT_FALSE(f.net.path_delay(a.id(), island.id()).has_value());
}

TEST(Network, TracerSeesLifecycle) {
  struct CountingTracer : Tracer {
    int sends = 0, delivers = 0, forwards = 0, drops = 0;
    void on_send(SimTime, const Node&, const net::Packet&) override { ++sends; }
    void on_deliver(SimTime, const Node&, const net::Packet&) override {
      ++delivers;
    }
    void on_forward(SimTime, const Node&, const net::Packet&) override {
      ++forwards;
    }
    void on_drop(SimTime, DropReason, const net::Packet&) override { ++drops; }
  };
  Fixture f;
  CountingTracer tracer;
  f.net.set_tracer(&tracer);
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& r = f.net.make<Node>("r");
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  f.net.connect(a.id(), r.id());
  f.net.connect(r.id(), b.id());
  f.net.add_host_route(a.id(), b.address(), r.id());
  f.net.add_host_route(r.id(), b.address(), b.id());
  a.send(make_packet(a.address(), b.address()));
  f.sim.run();
  EXPECT_EQ(tracer.sends, 1);
  EXPECT_EQ(tracer.delivers, 1);
  EXPECT_EQ(tracer.forwards, 2);  // at a (origination) and at r
  EXPECT_EQ(tracer.drops, 0);
}

TEST(Network, TransitConsumeStopsForwarding) {
  class Interceptor : public Node {
   public:
    using Node::Node;
    TransitAction transit(net::Packet&) override {
      ++consumed;
      return TransitAction::kConsumed;
    }
    int consumed = 0;
  };
  Fixture f;
  auto& a = f.net.make<Sink>("a", net::Ipv4Address(1, 0, 0, 1));
  auto& mid = f.net.make<Interceptor>("mid");
  auto& b = f.net.make<Sink>("b", net::Ipv4Address(1, 0, 0, 2));
  f.net.connect(a.id(), mid.id());
  f.net.connect(mid.id(), b.id());
  f.net.add_host_route(a.id(), b.address(), mid.id());
  f.net.add_host_route(mid.id(), b.address(), b.id());
  a.send(make_packet(a.address(), b.address()));
  f.sim.run();
  EXPECT_EQ(mid.consumed, 1);
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(f.net.counters().consumed, 1u);
}

}  // namespace
}  // namespace lispcp::sim
