// Topology invariants: the address plan, the LISP routing premise (EIDs not
// globally routable), DNS reachability, OWD symmetry, Fig. 1 shape.
#include <gtest/gtest.h>

#include "topo/internet.hpp"

namespace lispcp::topo {
namespace {

InternetSpec fig1_spec() {
  // The Fig. 1 scene: two domains, each dual-homed (providers A,B / X,Y).
  auto spec = InternetSpec::preset(ControlPlaneKind::kPce);
  spec.domains = 2;
  spec.hosts_per_domain = 2;
  spec.providers_per_domain = 2;
  return spec;
}

TEST(Topology, Fig1ComponentInventory) {
  Internet internet(fig1_spec());
  ASSERT_EQ(internet.domains().size(), 2u);
  for (const auto& dom : internet.domains()) {
    EXPECT_EQ(dom.hosts.size(), 2u);
    EXPECT_EQ(dom.xtrs.size(), 2u);
    EXPECT_EQ(dom.provider_links.size(), 2u);
    EXPECT_NE(dom.resolver, nullptr);
    EXPECT_NE(dom.authoritative, nullptr);
    EXPECT_NE(dom.pce, nullptr);
    EXPECT_NE(dom.irc, nullptr);
    EXPECT_NE(dom.control_plane, nullptr);
  }
  EXPECT_EQ(internet.registry().size(), 2u);
}

TEST(Topology, AddressPlanIsDisjoint) {
  auto spec = fig1_spec();
  spec.domains = 10;
  Internet internet(spec);
  const auto eid_space = net::Ipv4Prefix::from_string("100.64.0.0/10");
  const auto rloc_space = net::Ipv4Prefix::from_string("10.0.0.0/8");
  const auto infra_space = net::Ipv4Prefix::from_string("192.0.0.0/8");
  for (const auto& dom : internet.domains()) {
    for (const auto* host : dom.hosts) {
      EXPECT_TRUE(eid_space.contains(host->address())) << host->name();
    }
    for (const auto* xtr : dom.xtrs) {
      EXPECT_TRUE(rloc_space.contains(xtr->rloc())) << xtr->name();
    }
    EXPECT_TRUE(infra_space.contains(dom.resolver->address()));
    EXPECT_TRUE(infra_space.contains(dom.authoritative->address()));
    EXPECT_TRUE(infra_space.contains(dom.pce->address()));
    EXPECT_TRUE(eid_space.contains(dom.eid_prefix.address()));
  }
}

TEST(Topology, EidPrefixesAreUniquePerDomain) {
  auto spec = fig1_spec();
  spec.domains = 50;
  Internet internet(spec);
  std::set<net::Ipv4Prefix> prefixes;
  for (const auto& dom : internet.domains()) {
    EXPECT_TRUE(prefixes.insert(dom.eid_prefix).second) << dom.name;
  }
}

TEST(Topology, OwdIsSymmetricAndMatchesLinkBudget) {
  Internet internet(fig1_spec());
  const auto owd_01 = internet.owd(0, 1);
  const auto owd_10 = internet.owd(1, 0);
  EXPECT_EQ(owd_01, owd_10);
  // host -> R -> xtr -> core -> xtr -> R -> host:
  // 2 lan + 2 lan + 2 core_link = 2*0.2ms + 2*0.2ms + 2*20ms.
  const auto expected = sim::SimDuration::micros(200) * 4 +
                        sim::SimDuration::millis(20) * 2;
  EXPECT_EQ(owd_01, expected);
}

TEST(Topology, EidsNotGloballyRoutableUnderLisp) {
  Internet internet(fig1_spec());
  auto& net = internet.network();
  // A raw EID packet injected at the core must be dropped: only RLOC and
  // infra prefixes are routed there (the paper's premise).
  const auto before = net.counters().drops_no_route;
  net::TcpHeader tcp;
  auto packet = net::Packet::tcp(net::Ipv4Address(1, 1, 1, 1),
                                 internet.domain(1).hosts[0]->address(), tcp, 0);
  net.inject(internet.core_router().id(), std::move(packet));
  internet.sim().run();
  EXPECT_EQ(net.counters().drops_no_route, before + 1);
}

TEST(Topology, EidsGloballyRoutableUnderPlainIp) {
  Internet internet(InternetSpec::preset(ControlPlaneKind::kPlainIp));
  auto& net = internet.network();
  const auto before = net.counters().drops_no_route;
  net::TcpHeader tcp;
  auto packet = net::Packet::tcp(net::Ipv4Address(1, 1, 1, 1),
                                 internet.domain(1).hosts[0]->address(), tcp, 0);
  net.inject(internet.core_router().id(), std::move(packet));
  internet.sim().run();
  EXPECT_EQ(net.counters().drops_no_route, before);
}

TEST(Topology, RlocsGloballyReachable) {
  Internet internet(fig1_spec());
  for (const auto& dom : internet.domains()) {
    for (const auto* xtr : dom.xtrs) {
      const auto delay = internet.network().path_delay(
          internet.core_router().id(), xtr->id());
      ASSERT_TRUE(delay.has_value()) << xtr->name();
    }
  }
}

TEST(Topology, DnsInfrastructureReachableAcrossDomains) {
  Internet internet(fig1_spec());
  // Domain 0's resolver must reach domain 1's authoritative server (the
  // iterative query path crosses both PCEs).
  const auto delay = internet.network().path_delay(
      internet.domain(0).resolver->id(), internet.domain(1).authoritative->id());
  ASSERT_TRUE(delay.has_value());
  EXPECT_GT(*delay, sim::SimDuration::millis(40));  // crosses the core twice
}

TEST(Topology, HostNamesAndDestinations) {
  auto spec = fig1_spec();
  spec.domains = 3;
  Internet internet(spec);
  EXPECT_EQ(internet.host_name(2, 1).to_string(), "h1.d2.example");
  const auto destinations = internet.destination_names(0);
  // 2 hosts x 2 other domains.
  EXPECT_EQ(destinations.size(), 4u);
  for (const auto& name : destinations) {
    EXPECT_EQ(name.to_string().find("d0"), std::string::npos);
  }
}

TEST(Topology, RegistryMatchesSiteRlocs) {
  Internet internet(fig1_spec());
  for (const auto& dom : internet.domains()) {
    const auto* entry = internet.registry().find(dom.eid_prefix);
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->rlocs.size(), dom.xtrs.size());
    EXPECT_EQ(entry->rlocs[0].priority, 1);  // primary
    EXPECT_EQ(entry->rlocs[1].priority, 2);  // backup
    for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
      EXPECT_EQ(entry->rlocs[j].address, dom.xtrs[j]->rloc());
    }
  }
}

TEST(Topology, SpecValidation) {
  auto bad = fig1_spec();
  bad.domains = 1;
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
  bad = fig1_spec();
  bad.domains = 1000;
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
  bad = fig1_spec();
  bad.hosts_per_domain = 0;
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
  bad = fig1_spec();
  bad.providers_per_domain = 9;
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
}

TEST(Topology, ControlPlaneNames) {
  EXPECT_STREQ(to_string(ControlPlaneKind::kPce), "lisp-pce");
  EXPECT_STREQ(to_string(ControlPlaneKind::kAltQueue), "lisp-alt(queue)");
  EXPECT_STREQ(to_string(ControlPlaneKind::kPlainIp), "plain-ip");
}

TEST(Topology, PresetsSelectKindAndDefaults) {
  // A preset is the registry's spec defaults for the kind: it selects the
  // kind and applies the per-kind knobs (here, the miss policies that define
  // the ALT variants).
  for (auto kind : mapping::MappingSystemFactory::instance().kinds()) {
    EXPECT_EQ(InternetSpec::preset(kind).kind, kind);
  }
  EXPECT_EQ(InternetSpec::preset(ControlPlaneKind::kAltDrop).miss_policy,
            lisp::MissPolicy::kDrop);
  EXPECT_EQ(InternetSpec::preset(ControlPlaneKind::kAltQueue).miss_policy,
            lisp::MissPolicy::kQueue);
  EXPECT_EQ(InternetSpec::preset(ControlPlaneKind::kAltForward).miss_policy,
            lisp::MissPolicy::kForwardOverlay);
}

TEST(Topology, DeaggregationRegistersSubPrefixes) {
  auto spec = fig1_spec();
  spec.deaggregation_factor = 4;
  spec.hosts_per_domain = 8;
  Internet internet(spec);
  // 2 domains x 4 sub-prefixes.
  EXPECT_EQ(internet.registry().size(), 8u);
  const auto prefixes = internet.site_prefixes(0);
  ASSERT_EQ(prefixes.size(), 4u);
  EXPECT_EQ(prefixes[0].length(), 26);
  // Sub-prefixes tile the /24 exactly.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(internet.domain(0).eid_prefix.contains(prefixes[i]));
    EXPECT_EQ(prefixes[i].address().value(),
              internet.domain(0).eid_prefix.address().value() + i * 64);
  }
  // Hosts are spread so several sub-prefixes carry traffic.
  std::set<net::Ipv4Prefix> covering;
  for (std::size_t h = 0; h < 8; ++h) {
    for (const auto& p : prefixes) {
      if (p.contains(internet.host_eid(0, h))) covering.insert(p);
    }
  }
  EXPECT_GE(covering.size(), 3u);
  // The registry resolves each host to its covering sub-prefix.
  const auto* entry = internet.registry().lookup(internet.host_eid(0, 7));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->eid_prefix.length(), 26);
}

TEST(Topology, DeaggregationValidation) {
  auto bad = fig1_spec();
  bad.deaggregation_factor = 3;  // not a power of two
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
  bad.deaggregation_factor = 128;  // too large
  EXPECT_THROW(Internet{bad}, std::invalid_argument);
}

TEST(Topology, HostEidsMatchDnsZone) {
  auto spec = fig1_spec();
  spec.hosts_per_domain = 4;
  Internet internet(spec);
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t h = 0; h < 4; ++h) {
      EXPECT_EQ(internet.domain(d).hosts[h]->address(), internet.host_eid(d, h));
      const auto* records =
          internet.domain(d).authoritative->zone().find_a(internet.host_name(d, h));
      ASSERT_NE(records, nullptr);
      EXPECT_EQ(records->front().addr, internet.host_eid(d, h));
    }
  }
}

TEST(Topology, LargeTopologyBuildsQuickly) {
  auto spec = InternetSpec::preset(ControlPlaneKind::kAltDrop);
  spec.domains = 128;
  spec.hosts_per_domain = 2;
  spec.providers_per_domain = 2;
  Internet internet(spec);
  // 128 domains x (1 R + 2 xTR + 1 resolver + 1 auth + 2 hosts) + infra.
  EXPECT_GT(internet.network().node_count(), 128u * 7u);
  EXPECT_EQ(internet.registry().size(), 128u);
}

}  // namespace
}  // namespace lispcp::topo
