// Workload-seam tests (the packet / flow-aggregate engine boundary):
//  * packet-mode golden parity — refactoring the per-packet path behind
//    workload::Traffic must not perturb a single record: summaries are
//    pinned against values captured from the pre-refactor library;
//  * record identity across Runner job counts for both engines;
//  * flow-aggregate determinism across reruns, and seed sensitivity;
//  * the SweepSpec workload-mode axis round-trips through the JSON sink
//    and the case-insensitive point filter;
//  * MapCache::lookup_batch advances stats like `count` serial lookups.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "lisp/map_cache.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::scenario {
namespace {

using topo::ControlPlaneKind;

/// The exact configuration the pre-refactor golden values were captured
/// with; any drift here invalidates the numbers in kGolden.
ExperimentConfig seam_config(ControlPlaneKind kind, workload::Mode mode) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(kind);
  config.spec.domains = 6;
  config.spec.hosts_per_domain = 2;
  config.spec.cache_capacity = 4;
  config.spec.mapping_ttl_seconds = 5;
  config.spec.seed = 42;
  config.spec.workload_mode = mode;
  config.traffic.sessions_per_second = 30.0;
  config.traffic.duration = sim::SimDuration::seconds(8);
  config.traffic.zipf_alpha = 0.8;
  config.traffic.aggregate_epoch = sim::SimDuration::millis(100);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

struct Golden {
  ControlPlaneKind kind;
  std::uint64_t sessions;
  std::uint64_t established;
  std::uint64_t completed;
  std::uint64_t miss_events;
  std::uint64_t miss_drops;
  std::uint64_t encapsulated;
  std::uint64_t syn_retx;
  double t_dns_mean_ms;
  double t_setup_mean_ms;
  double t_setup_p99_ms;
};

// Captured by running seam_config() through the library as it existed
// before the workload::Traffic seam was introduced (printed with %.9f,
// hence the 1e-8 latitude on the latency means below).  The per-packet
// engine must keep producing these records exactly.
constexpr Golden kGolden[] = {
    {ControlPlaneKind::kAltDrop, 234, 220, 220, 134, 171, 2420, 116,
     6.636895496, 2255.818209941, 21123.403344},
    {ControlPlaneKind::kAltQueue, 234, 234, 234, 85, 0, 2574, 0,
     6.636895496, 172.260493846, 367.1875},
    {ControlPlaneKind::kPce, 234, 234, 234, 0, 0, 2574, 0,
     6.759839278, 129.265853030, 268.75},
};

TEST(WorkloadSeam, PacketModeMatchesPreRefactorGolden) {
  for (const auto& golden : kGolden) {
    SCOPED_TRACE(topo::to_string(golden.kind));
    Experiment experiment(seam_config(golden.kind, workload::Mode::kPacket));
    const auto s = experiment.run();
    EXPECT_EQ(s.sessions, golden.sessions);
    EXPECT_EQ(s.established, golden.established);
    EXPECT_EQ(s.completed, golden.completed);
    EXPECT_EQ(s.miss_events, golden.miss_events);
    EXPECT_EQ(s.miss_drops, golden.miss_drops);
    EXPECT_EQ(s.encapsulated, golden.encapsulated);
    EXPECT_EQ(s.syn_retransmissions, golden.syn_retx);
    EXPECT_NEAR(s.t_dns_mean_ms, golden.t_dns_mean_ms, 1e-8);
    EXPECT_NEAR(s.t_setup_mean_ms, golden.t_setup_mean_ms, 1e-8);
    EXPECT_NEAR(s.t_setup_p99_ms, golden.t_setup_p99_ms, 1e-8);
  }
}

/// A sweep over both engines and three control planes on the golden
/// topology; the probe records enough metric surface that any scheduling
/// dependence would show up as a Field mismatch.
SweepSpec seam_sweep() {
  SweepSpec spec;
  spec.named("seam")
      .base([](ExperimentConfig& config) {
        config = seam_config(ControlPlaneKind::kAltDrop,
                             workload::Mode::kPacket);
      })
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
           ControlPlaneKind::kPce}))
      .axis(Axis::workload_modes());
  return spec;
}

void seam_probe(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_int("sessions", s.sessions);
  record.set_int("established", s.established);
  record.set_int("drops", s.miss_drops);
  record.set_int("encapsulated", s.encapsulated);
  record.set_real("t_dns mean (ms)", s.t_dns_mean_ms, 9);
  record.set_real("t_setup mean (ms)", s.t_setup_mean_ms, 9);
  record.set_real("t_setup p99 (ms)", s.t_setup_p99_ms, 9);
}

ResultSet run_seam(std::size_t jobs, const std::string& filter = {}) {
  Runner runner(seam_sweep());
  runner.probe(seam_probe);
  RunOptions options;
  options.jobs = jobs;
  options.filter = filter;
  return runner.run(options);
}

TEST(WorkloadSeam, RecordsIdenticalAcrossJobsInBothModes) {
  const auto serial = run_seam(1);
  const auto parallel = run_seam(4);
  ASSERT_EQ(serial.size(), 6u);
  EXPECT_TRUE(serial == parallel);

  // Byte-level: the JSON artifacts must match too (Field doubles included).
  std::ostringstream a;
  std::ostringstream b;
  serial.to_json(a);
  parallel.to_json(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(WorkloadSeam, AggregateEngineIsDeterministicAcrossReruns) {
  const auto first = run_seam(1, "aggregate");
  const auto second = run_seam(4, "aggregate");
  ASSERT_EQ(first.size(), 3u);  // one per control plane, aggregate arm only
  EXPECT_TRUE(first == second);
}

TEST(WorkloadSeam, AggregateEngineTracksTheSeed) {
  auto base = seam_config(ControlPlaneKind::kPce, workload::Mode::kAggregate);
  auto reseeded = base;
  reseeded.spec.seed = 43;
  Experiment a(std::move(base));
  Experiment b(std::move(reseeded));
  // Different seeds must drive a different arrival draw (same rate, so the
  // totals land close — but an ignored seed would make them equal).
  EXPECT_NE(a.run().sessions, b.run().sessions);
}

TEST(WorkloadSeam, ModeAxisRoundTripsThroughJsonSink) {
  const auto result = run_seam(2);
  ASSERT_EQ(result.size(), 6u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    const auto* field = result.records()[i].find("mode");
    ASSERT_NE(field, nullptr);
    const auto parsed = workload::parse_mode(field->as_text());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, result.points()[i].config.spec.workload_mode);
  }
  std::ostringstream os;
  result.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"mode\": \"packet\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"aggregate\""), std::string::npos);
}

TEST(WorkloadSeam, ModeFilterMatchesCaseInsensitively) {
  const auto result = run_seam(2, "AGGREGATE");
  ASSERT_EQ(result.size(), 3u);
  for (const auto& point : result.points()) {
    EXPECT_EQ(point.config.spec.workload_mode, workload::Mode::kAggregate);
  }
}

// ---------------------------------------------------------------------------
// MapCache batch API
// ---------------------------------------------------------------------------

lisp::MapEntry batch_entry(std::uint32_t ttl = 900) {
  lisp::MapEntry entry;
  entry.eid_prefix =
      net::Ipv4Prefix(net::Ipv4Address(100, 64, 1, 0), 24);
  entry.rlocs = {lisp::Rloc{net::Ipv4Address(10, 0, 1, 1), 1, 100, true}};
  entry.ttl_seconds = ttl;
  return entry;
}

sim::SimTime at_seconds(int s) {
  return sim::SimTime::zero() + sim::SimDuration::seconds(s);
}

TEST(WorkloadSeam, LookupBatchCountsLikeSerialLookups) {
  const auto eid = net::Ipv4Address(100, 64, 1, 10);

  lisp::MapCache batch(4);
  lisp::MapCache serial(4);
  batch.insert(batch_entry(), at_seconds(0));
  serial.insert(batch_entry(), at_seconds(0));

  EXPECT_TRUE(batch.lookup_batch(eid, 5, at_seconds(1)) != nullptr);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(serial.lookup(eid, at_seconds(1)) != nullptr);
  }
  EXPECT_EQ(batch.stats().hits, serial.stats().hits);
  EXPECT_EQ(batch.stats().lookups, serial.stats().lookups);

  // Cold batch miss: every flow of the batch counts.
  const auto absent = net::Ipv4Address(100, 64, 9, 10);
  EXPECT_FALSE(batch.lookup_batch(absent, 3, at_seconds(1)) != nullptr);
  EXPECT_EQ(batch.stats().misses_absent, 3u);

  // Expired batch miss.
  lisp::MapCache expiring(4);
  expiring.insert(batch_entry(/*ttl=*/1), at_seconds(0));
  EXPECT_FALSE(expiring.lookup_batch(eid, 4, at_seconds(5)) != nullptr);
  EXPECT_EQ(expiring.stats().misses_expired, 4u);
}

}  // namespace
}  // namespace lispcp::scenario
