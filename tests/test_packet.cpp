#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace lispcp::net {
namespace {

TEST(Headers, Ipv4RoundTrip) {
  Ipv4Header h;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(10, 0, 0, 2);
  h.protocol = IpProto::kTcp;
  h.ttl = 17;
  h.total_length = 1234;
  h.identification = 0x4242;
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), Ipv4Header::kWireSize);
  ByteReader r(bytes);
  EXPECT_EQ(Ipv4Header::parse(r), h);
}

TEST(Headers, Ipv4BadChecksumRejected) {
  Ipv4Header h;
  h.src = Ipv4Address(1, 1, 1, 1);
  h.dst = Ipv4Address(2, 2, 2, 2);
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  bytes[8] = std::byte{99};  // corrupt TTL without fixing checksum
  ByteReader r(bytes);
  EXPECT_THROW(Ipv4Header::parse(r), ParseError);
}

TEST(Headers, UdpRoundTrip) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 4341;
  h.length = 512;
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(UdpHeader::parse(r), h);
}

TEST(Headers, UdpLengthUnderEightRejected) {
  ByteWriter w;
  w.u16(1);
  w.u16(2);
  w.u16(4);  // length < 8
  w.u16(0);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(UdpHeader::parse(r), ParseError);
}

TEST(Headers, TcpRoundTripAllFlagCombinations) {
  for (int mask = 0; mask < 16; ++mask) {
    TcpHeader h;
    h.src_port = 1024;
    h.dst_port = 80;
    h.seq = 0xA1B2C3D4;
    h.ack = 0x11223344;
    h.flags.syn = mask & 1;
    h.flags.ack = mask & 2;
    h.flags.fin = mask & 4;
    h.flags.rst = mask & 8;
    ByteWriter w;
    h.serialize(w);
    auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(TcpHeader::parse(r), h) << "flag mask " << mask;
  }
}

TEST(Headers, LispRoundTrip) {
  LispHeader h;
  h.nonce = 0xABCDEF;  // 24-bit
  h.locator_status_bits = 0x5;
  ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), LispHeader::kWireSize);
  ByteReader r(bytes);
  EXPECT_EQ(LispHeader::parse(r), h);
}

TEST(Packet, UdpFactoryLayout) {
  auto p = Packet::udp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1000,
                       53, std::make_shared<RawPayload>(100));
  ASSERT_EQ(p.stack().size(), 2u);
  EXPECT_EQ(p.outer_ip().protocol, IpProto::kUdp);
  ASSERT_NE(p.udp(), nullptr);
  EXPECT_EQ(p.udp()->dst_port, 53);
  EXPECT_EQ(p.wire_size(), 20u + 8u + 100u);
}

TEST(Packet, TcpFactoryLayout) {
  TcpHeader tcp;
  tcp.flags.syn = true;
  auto p = Packet::tcp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), tcp);
  EXPECT_EQ(p.outer_ip().protocol, IpProto::kTcp);
  ASSERT_NE(p.tcp(), nullptr);
  EXPECT_TRUE(p.tcp()->flags.syn);
  EXPECT_EQ(p.wire_size(), 40u);
  EXPECT_EQ(p.payload(), nullptr);
}

TEST(Packet, LispEncapsulationAndDecapsulation) {
  TcpHeader tcp;
  auto inner_src = Ipv4Address(100, 64, 0, 10);
  auto inner_dst = Ipv4Address(100, 64, 1, 10);
  auto p = Packet::tcp(inner_src, inner_dst, tcp, 500);
  const auto inner_size = p.wire_size();

  // Encapsulate: outer IP + UDP + LISP shim.
  LispHeader shim;
  shim.nonce = 42;
  UdpHeader udp;
  udp.dst_port = ports::kLispData;
  Ipv4Header outer;
  outer.src = Ipv4Address(10, 0, 0, 1);
  outer.dst = Ipv4Address(10, 0, 1, 1);
  p.push_outer(shim);
  p.push_outer(udp);
  p.push_outer(outer);

  EXPECT_EQ(p.wire_size(), inner_size + 20 + 8 + 8);
  EXPECT_EQ(p.outer_ip().dst, Ipv4Address(10, 0, 1, 1));
  EXPECT_EQ(p.inner_ip().dst, inner_dst);
  ASSERT_NE(p.lisp(), nullptr);
  EXPECT_EQ(p.lisp()->nonce, 42u);

  // Decapsulate.
  p.pop_outer();
  p.pop_outer();
  p.pop_outer();
  EXPECT_EQ(p.wire_size(), inner_size);
  EXPECT_EQ(p.outer_ip().src, inner_src);
  EXPECT_EQ(p.lisp(), nullptr);
}

TEST(Packet, PopEmptyThrows) {
  Packet p;
  EXPECT_THROW(p.pop_outer(), std::logic_error);
  EXPECT_THROW((void)p.outer_ip(), std::logic_error);
}

TEST(Packet, SerializeBackfillsLengths) {
  auto p = Packet::udp(Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), 9, 10,
                       std::make_shared<RawPayload>(32));
  auto bytes = p.serialize();
  ASSERT_EQ(bytes.size(), 20u + 8u + 32u);
  ByteReader r(bytes);
  auto ip = Ipv4Header::parse(r);
  EXPECT_EQ(ip.total_length, 60);
  auto udp = UdpHeader::parse(r);
  EXPECT_EQ(udp.length, 40);
}

TEST(Packet, SerializedEncapsulatedPacketParses) {
  TcpHeader tcp;
  auto p = Packet::tcp(Ipv4Address(100, 64, 0, 10), Ipv4Address(100, 64, 1, 10),
                       tcp, 64);
  LispHeader shim;
  UdpHeader udp;
  udp.dst_port = ports::kLispData;
  Ipv4Header outer;
  outer.src = Ipv4Address(10, 0, 0, 1);
  outer.dst = Ipv4Address(10, 0, 1, 1);
  p.push_outer(shim);
  p.push_outer(udp);
  p.push_outer(outer);

  auto bytes = p.serialize();
  ByteReader r(bytes);
  auto parsed_outer = Ipv4Header::parse(r);
  EXPECT_EQ(parsed_outer.total_length, bytes.size());
  auto parsed_udp = UdpHeader::parse(r);
  EXPECT_EQ(parsed_udp.dst_port, ports::kLispData);
  (void)LispHeader::parse(r);
  auto parsed_inner = Ipv4Header::parse(r);
  EXPECT_EQ(parsed_inner.dst, Ipv4Address(100, 64, 1, 10));
}

TEST(Packet, IdsAreUniqueAndIncreasing) {
  Packet a;
  Packet b;
  EXPECT_LT(a.id(), b.id());
}

TEST(Packet, PayloadTypedAccess) {
  auto p = Packet::udp(Ipv4Address(), Ipv4Address(), 1, 2,
                       std::make_shared<RawPayload>(10));
  EXPECT_NE(p.payload_as<RawPayload>(), nullptr);
  EXPECT_EQ(p.payload_as<RawPayload>()->wire_size(), 10u);
}

TEST(Packet, DescribeMentionsLayers) {
  TcpHeader tcp;
  auto p = Packet::tcp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), tcp, 5);
  const auto text = p.describe();
  EXPECT_NE(text.find("IPv4"), std::string::npos);
  EXPECT_NE(text.find("TCP"), std::string::npos);
  EXPECT_NE(text.find("raw[5B]"), std::string::npos);
}

}  // namespace
}  // namespace lispcp::net
