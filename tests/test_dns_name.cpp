#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/name.hpp"

namespace lispcp::dns {
namespace {

TEST(DomainName, ParseAndFormat) {
  auto name = DomainName::from_string("www.Example.COM");
  EXPECT_EQ(name.to_string(), "www.example.com");  // case-insensitive
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.labels()[0], "www");
  EXPECT_EQ(name.labels()[2], "com");
}

TEST(DomainName, RootForms) {
  EXPECT_TRUE(DomainName().is_root());
  EXPECT_EQ(DomainName().to_string(), ".");
  auto parsed = DomainName::parse(".");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_root());
}

TEST(DomainName, TrailingDotAccepted) {
  EXPECT_EQ(DomainName::from_string("example.com."),
            DomainName::from_string("example.com"));
}

TEST(DomainName, ParseRejectsMalformed) {
  EXPECT_FALSE(DomainName::parse("").has_value());
  EXPECT_FALSE(DomainName::parse("a..b").has_value());
  EXPECT_FALSE(DomainName::parse(".a").has_value());
  EXPECT_FALSE(DomainName::parse("a..").has_value());
  EXPECT_FALSE(DomainName::parse(std::string(64, 'x') + ".com").has_value());
  // Total length > 255.
  std::string huge;
  for (int i = 0; i < 50; ++i) huge += "abcdef.";
  huge += "com";
  EXPECT_FALSE(DomainName::parse(huge).has_value());
}

TEST(DomainName, IsUnderRelations) {
  const auto www = DomainName::from_string("www.example.com");
  const auto example = DomainName::from_string("example.com");
  const auto com = DomainName::from_string("com");
  const auto org = DomainName::from_string("org");

  EXPECT_TRUE(www.is_under(example));
  EXPECT_TRUE(www.is_under(com));
  EXPECT_TRUE(www.is_under(DomainName()));  // everything is under the root
  EXPECT_TRUE(www.is_under(www));
  EXPECT_FALSE(example.is_under(www));
  EXPECT_FALSE(www.is_under(org));
  // Label-boundary check: "badexample.com" is NOT under "example.com".
  EXPECT_FALSE(DomainName::from_string("badexample.com").is_under(example));
}

TEST(DomainName, ParentAndChild) {
  const auto www = DomainName::from_string("www.example.com");
  EXPECT_EQ(www.parent(), DomainName::from_string("example.com"));
  EXPECT_EQ(www.parent().parent(), DomainName::from_string("com"));
  EXPECT_TRUE(www.parent().parent().parent().is_root());
  EXPECT_TRUE(DomainName().parent().is_root());

  EXPECT_EQ(DomainName::from_string("example.com").child("www"), www);
  EXPECT_THROW(DomainName().child(""), std::invalid_argument);
}

TEST(DomainName, WireRoundTrip) {
  for (const char* text : {"h0.d3.example", "a.b.c.d.e", "x"}) {
    const auto name = DomainName::from_string(text);
    net::ByteWriter w;
    name.serialize(w);
    auto bytes = w.take();
    EXPECT_EQ(bytes.size(), name.wire_size());
    net::ByteReader r(bytes);
    EXPECT_EQ(DomainName::parse_wire(r), name);
    EXPECT_TRUE(r.empty());
  }
}

TEST(DomainName, WireRootIsSingleZeroByte) {
  net::ByteWriter w;
  DomainName().serialize(w);
  auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0);
}

TEST(DomainName, WireTruncatedThrows) {
  net::ByteWriter w;
  w.u8(3);
  w.u8('a');  // claims 3 bytes, provides 1
  auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_THROW(DomainName::parse_wire(r), net::ParseError);
}

TEST(DomainName, HashAndEquality) {
  std::unordered_set<DomainName> set;
  set.insert(DomainName::from_string("a.example"));
  set.insert(DomainName::from_string("A.EXAMPLE"));
  set.insert(DomainName::from_string("b.example"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DomainName, OrderingIsDeterministic) {
  const auto a = DomainName::from_string("a.example");
  const auto b = DomainName::from_string("b.example");
  EXPECT_TRUE((a < b) != (b < a));
}

}  // namespace
}  // namespace lispcp::dns
