// Iterative DNS resolution over a real simulated hierarchy:
// client -> resolver -> root -> TLD -> authoritative.
#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "net/ports.hpp"
#include "sim/network.hpp"

namespace lispcp::dns {
namespace {

const net::Ipv4Address kClientAddr(100, 64, 0, 10);
const net::Ipv4Address kResolverAddr(192, 1, 0, 10);
const net::Ipv4Address kRootAddr(192, 0, 1, 1);
const net::Ipv4Address kTldAddr(192, 0, 1, 2);
const net::Ipv4Address kAuthAddr(192, 1, 5, 20);
const net::Ipv4Address kHostEid(100, 64, 5, 10);

/// Test client: fires queries, records answers with timestamps.
class StubClient : public sim::Node {
 public:
  StubClient(sim::Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }

  void query(std::uint16_t id, const std::string& name,
             net::Ipv4Address resolver) {
    auto message = DnsMessage::query(
        id, {DomainName::from_string(name), RrType::kA}, true);
    sent_at[id] = sim().now();
    send(net::Packet::udp(address(), resolver, 5353, net::ports::kDns, message));
  }

  void deliver(net::Packet packet) override {
    if (auto message = packet.payload_as<DnsMessage>()) {
      responses[message->id()] = message;
      answered_at[message->id()] = sim().now();
      return;
    }
    Node::deliver(std::move(packet));
  }

  std::unordered_map<std::uint16_t, std::shared_ptr<const DnsMessage>> responses;
  std::unordered_map<std::uint16_t, sim::SimTime> sent_at;
  std::unordered_map<std::uint16_t, sim::SimTime> answered_at;
};

class DnsResolutionTest : public ::testing::Test {
 protected:
  DnsResolutionTest() : network_(sim_) {
    // Zones: root delegates "example" -> TLD; TLD delegates "d5.example" ->
    // auth; auth has the host record.
    Zone root_zone{DomainName()};
    root_zone.delegate({DomainName::from_string("example"),
                        {{DomainName::from_string("ns.example"), kTldAddr}}});
    Zone tld_zone{DomainName::from_string("example")};
    tld_zone.delegate({DomainName::from_string("d5.example"),
                       {{DomainName::from_string("ns.d5.example"), kAuthAddr}}});
    Zone auth_zone{DomainName::from_string("d5.example")};
    auth_zone.add_a(DomainName::from_string("h0.d5.example"), kHostEid, 300);

    root_ = &network_.make<DnsServer>("root", kRootAddr, std::move(root_zone));
    tld_ = &network_.make<DnsServer>("tld", kTldAddr, std::move(tld_zone));
    auth_ = &network_.make<DnsServer>("auth", kAuthAddr, std::move(auth_zone));

    ResolverConfig rcfg;
    rcfg.root_hints = {kRootAddr};
    rcfg.query_timeout = sim::SimDuration::millis(500);
    resolver_ = &network_.make<DnsResolver>("resolver", kResolverAddr, rcfg);
    client_ = &network_.make<StubClient>("client", kClientAddr);

    hub_ = &network_.make<sim::Node>("hub");
    sim::LinkConfig wan;
    wan.delay = sim::SimDuration::millis(10);
    for (sim::Node* n :
         {static_cast<sim::Node*>(root_), static_cast<sim::Node*>(tld_),
          static_cast<sim::Node*>(auth_), static_cast<sim::Node*>(resolver_),
          static_cast<sim::Node*>(client_)}) {
      network_.connect(hub_->id(), n->id(), wan);
      network_.add_route(n->id(), net::Ipv4Prefix(), hub_->id());
      network_.add_host_route(hub_->id(), n->address(), n->id());
    }
  }

  sim::Simulator sim_;
  sim::Network network_;
  DnsServer* root_ = nullptr;
  DnsServer* tld_ = nullptr;
  DnsServer* auth_ = nullptr;
  DnsResolver* resolver_ = nullptr;
  StubClient* client_ = nullptr;
  sim::Node* hub_ = nullptr;
};

TEST_F(DnsResolutionTest, ColdResolutionWalksTheHierarchy) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(1));
  auto response = client_->responses[1];
  EXPECT_EQ(response->rcode(), Rcode::kNoError);
  ASSERT_TRUE(response->first_address().has_value());
  EXPECT_EQ(*response->first_address(), kHostEid);

  EXPECT_EQ(root_->stats().referrals, 1u);
  EXPECT_EQ(tld_->stats().referrals, 1u);
  EXPECT_EQ(auth_->stats().answers, 1u);
  EXPECT_EQ(resolver_->stats().upstream_queries, 3u);
  EXPECT_EQ(resolver_->stats().cache_misses, 1u);

  // Cold T_DNS over the star (two 10 ms hops per direction): one
  // client<->resolver RTT (40 ms) + three upstream RTTs (120 ms) + processing.
  const auto t_dns = client_->answered_at[1] - client_->sent_at[1];
  EXPECT_GT(t_dns, sim::SimDuration::millis(160));
  EXPECT_LT(t_dns, sim::SimDuration::millis(170));
}

TEST_F(DnsResolutionTest, WarmCacheAnswersLocally) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  client_->query(2, "h0.d5.example", kResolverAddr);
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(2));
  EXPECT_EQ(resolver_->stats().cache_hits, 1u);
  EXPECT_EQ(resolver_->stats().upstream_queries, 3u);  // no new upstream work
  // Warm T_DNS ~ one client<->resolver RTT (40 ms) + processing.
  const auto t_dns = client_->answered_at[2] - client_->sent_at[2];
  EXPECT_LT(t_dns, sim::SimDuration::millis(45));
  EXPECT_TRUE(resolver_->is_cached(DomainName::from_string("h0.d5.example")));
}

TEST_F(DnsResolutionTest, CacheRespectsTtl) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  // Advance beyond the 300s record TTL.
  sim_.run_until(sim_.now() + sim::SimDuration::seconds(301));
  EXPECT_FALSE(resolver_->is_cached(DomainName::from_string("h0.d5.example")));
  client_->query(2, "h0.d5.example", kResolverAddr);
  sim_.run();
  EXPECT_EQ(resolver_->stats().cache_misses, 2u);
  ASSERT_TRUE(client_->responses.contains(2));
  EXPECT_TRUE(client_->responses[2]->first_address().has_value());
}

TEST_F(DnsResolutionTest, ReferralCacheShortcutsSiblingLookups) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  // New name in the same zone: the cached d5.example referral skips root+TLD.
  // (The name does not exist, but the query must go straight to auth.)
  client_->query(2, "h9.d5.example", kResolverAddr);
  sim_.run();
  EXPECT_EQ(root_->stats().queries, 1u);  // still only the first walk
  EXPECT_EQ(tld_->stats().queries, 1u);
  EXPECT_EQ(auth_->stats().queries, 2u);
}

TEST_F(DnsResolutionTest, NxDomainAndNegativeCache) {
  client_->query(1, "missing.d5.example", kResolverAddr);
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(1));
  EXPECT_EQ(client_->responses[1]->rcode(), Rcode::kNxDomain);

  client_->query(2, "missing.d5.example", kResolverAddr);
  sim_.run();
  EXPECT_EQ(client_->responses[2]->rcode(), Rcode::kNxDomain);
  EXPECT_EQ(auth_->stats().queries, 1u);  // second answer came from the negative cache
}

TEST_F(DnsResolutionTest, OutOfZoneQueryIsNxDomain) {
  client_->query(1, "host.other", kResolverAddr);
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(1));
  EXPECT_EQ(client_->responses[1]->rcode(), Rcode::kNxDomain);
}

TEST_F(DnsResolutionTest, ConcurrentQueriesCoalesce) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  // Second query for the same name a moment later, while the first is in
  // flight (iterative walk takes ~60 ms).
  sim_.schedule(sim::SimDuration::millis(5),
                [this] { client_->query(2, "h0.d5.example", kResolverAddr); });
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(1));
  ASSERT_TRUE(client_->responses.contains(2));
  EXPECT_EQ(resolver_->stats().coalesced, 1u);
  EXPECT_EQ(resolver_->stats().upstream_queries, 3u);  // one walk served both
}

TEST_F(DnsResolutionTest, UnreachableServerTimesOutToServfail) {
  // Cut the authoritative server off.
  sim::Link* link = network_.link_between(hub_->id(), auth_->id());
  ASSERT_NE(link, nullptr);
  link->set_up(false);
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  ASSERT_TRUE(client_->responses.contains(1));
  EXPECT_EQ(client_->responses[1]->rcode(), Rcode::kServFail);
  EXPECT_GT(resolver_->stats().retries, 0u);
  EXPECT_EQ(resolver_->stats().servfail, 1u);
}

TEST_F(DnsResolutionTest, FlushCacheForcesRefetch) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  resolver_->flush_cache();
  EXPECT_FALSE(resolver_->is_cached(DomainName::from_string("h0.d5.example")));
  client_->query(2, "h0.d5.example", kResolverAddr);
  sim_.run();
  EXPECT_EQ(root_->stats().queries, 2u);  // full re-walk
}

TEST_F(DnsResolutionTest, ResolutionLatencyHistogramPopulated) {
  client_->query(1, "h0.d5.example", kResolverAddr);
  sim_.run();
  EXPECT_EQ(resolver_->resolution_latency().count(), 1u);
  EXPECT_GT(resolver_->resolution_latency().mean(), 0.0);
}

TEST(ZoneValidation, RejectsForeignNamesAndEmptyDelegations) {
  Zone zone{DomainName::from_string("d1.example")};
  EXPECT_THROW(zone.add_a(DomainName::from_string("h0.d2.example"),
                          net::Ipv4Address(1, 2, 3, 4)),
               std::invalid_argument);
  EXPECT_THROW(zone.delegate({DomainName::from_string("d1.example"), {}}),
               std::invalid_argument);
  EXPECT_THROW(
      zone.delegate({DomainName::from_string("other.example"),
                     {{DomainName::from_string("ns.other.example"),
                       net::Ipv4Address(1, 1, 1, 1)}}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace lispcp::dns
