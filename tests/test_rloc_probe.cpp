// RLOC probing (draft §6.3): liveness detection, down/up transitions, and
// data-plane failover to backup locators without any control-plane oracle.
#include <gtest/gtest.h>

#include "lisp/tunnel_router.hpp"
#include "net/ports.hpp"

namespace lispcp::lisp {
namespace {

const net::Ipv4Prefix kEidSpace = net::Ipv4Prefix::from_string("100.64.0.0/10");
const net::Ipv4Prefix kSrcEids = net::Ipv4Prefix::from_string("100.64.0.0/24");
const net::Ipv4Prefix kDstEids = net::Ipv4Prefix::from_string("100.64.1.0/24");
const net::Ipv4Address kSrcHost(100, 64, 0, 10);
const net::Ipv4Address kDstHost(100, 64, 1, 10);
const net::Ipv4Address kItrRloc(10, 0, 0, 1);
const net::Ipv4Address kEtrRlocA(10, 0, 1, 1);
const net::Ipv4Address kEtrRlocB(10, 0, 1, 2);

class Endpoint : public sim::Node {
 public:
  Endpoint(sim::Network& network, std::string name, net::Ipv4Address address)
      : Node(network, std::move(name)) {
    add_address(address);
  }
  void deliver(net::Packet packet) override { received.push_back(std::move(packet)); }
  std::vector<net::Packet> received;
};

/// ITR probing two ETRs (primary A, backup B) of a dual-homed site.
struct Fixture {
  Fixture() : net(sim) {
    src = &net.make<Endpoint>("src", kSrcHost);
    dst = &net.make<Endpoint>("dst", kDstHost);
    core = &net.make<sim::Node>("core");

    XtrConfig itr_cfg;
    itr_cfg.local_eid_prefixes = {kSrcEids};
    itr_cfg.eid_space = {kEidSpace};
    itr_cfg.rloc_probing = true;
    itr_cfg.probe_interval = sim::SimDuration::seconds(1);
    itr_cfg.probe_timeout = sim::SimDuration::millis(200);
    itr_cfg.probe_down_threshold = 3;
    itr = &net.make<TunnelRouter>("itr", kItrRloc, itr_cfg);

    XtrConfig etr_cfg;
    etr_cfg.local_eid_prefixes = {kDstEids};
    etr_cfg.eid_space = {kEidSpace};
    etr_a = &net.make<TunnelRouter>("etrA", kEtrRlocA, etr_cfg);
    etr_b = &net.make<TunnelRouter>("etrB", kEtrRlocB, etr_cfg);

    sim::LinkConfig wan;
    wan.delay = sim::SimDuration::millis(10);
    net.connect(src->id(), itr->id(), wan);
    net.connect(itr->id(), core->id(), wan);
    link_a = &net.connect(core->id(), etr_a->id(), wan);
    link_b = &net.connect(core->id(), etr_b->id(), wan);
    net.connect(etr_a->id(), dst->id(), wan);

    net.add_route(src->id(), net::Ipv4Prefix(), itr->id());
    net.add_route(itr->id(), net::Ipv4Prefix(), core->id());
    net.add_host_route(core->id(), kEtrRlocA, etr_a->id());
    net.add_host_route(core->id(), kEtrRlocB, etr_b->id());
    net.add_host_route(core->id(), kItrRloc, itr->id());
    net.add_route(etr_a->id(), net::Ipv4Prefix(), core->id());
    net.add_route(etr_b->id(), net::Ipv4Prefix(), core->id());
    net.add_route(etr_a->id(), kDstEids, dst->id());

    MapEntry mapping;
    mapping.eid_prefix = kDstEids;
    mapping.rlocs = {Rloc{kEtrRlocA, 1, 100, true},
                     Rloc{kEtrRlocB, 2, 100, true}};
    itr->install_mapping(mapping);
  }

  void send_data() {
    net::TcpHeader tcp;
    tcp.src_port = 1;
    tcp.dst_port = 80;
    src->send(net::Packet::tcp(kSrcHost, kDstHost, tcp, 100));
  }

  sim::Simulator sim;
  sim::Network net;
  Endpoint* src = nullptr;
  Endpoint* dst = nullptr;
  sim::Node* core = nullptr;
  TunnelRouter* itr = nullptr;
  TunnelRouter* etr_a = nullptr;
  TunnelRouter* etr_b = nullptr;
  sim::Link* link_a = nullptr;
  sim::Link* link_b = nullptr;
};

TEST(RlocProbe, ProbesAreAnsweredWhileUp) {
  Fixture f;
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(5));
  EXPECT_GT(f.itr->stats().probes_sent, 0u);
  EXPECT_GT(f.itr->stats().probe_replies_received, 0u);
  EXPECT_GT(f.etr_a->stats().probes_answered, 0u);
  EXPECT_GT(f.etr_b->stats().probes_answered, 0u);
  EXPECT_EQ(f.itr->stats().rlocs_marked_down, 0u);
  EXPECT_TRUE(f.itr->rloc_reachable(kEtrRlocA));
  EXPECT_TRUE(f.itr->rloc_reachable(kEtrRlocB));
}

TEST(RlocProbe, ConsecutiveLossesMarkLocatorDown) {
  Fixture f;
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(3));
  f.link_a->set_up(false);
  // Three probe intervals (1 s each) must elapse before the threshold hits.
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(2));
  EXPECT_TRUE(f.itr->rloc_reachable(kEtrRlocA));  // not yet: 2 losses
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(3));
  EXPECT_FALSE(f.itr->rloc_reachable(kEtrRlocA));
  EXPECT_EQ(f.itr->stats().rlocs_marked_down, 1u);
  EXPECT_TRUE(f.itr->rloc_reachable(kEtrRlocB));
}

TEST(RlocProbe, DataFailsOverToBackupAfterDetection) {
  Fixture f;
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(3));
  f.send_data();
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(1));
  EXPECT_EQ(f.dst->received.size(), 1u);  // via primary A

  f.link_a->set_up(false);
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(6));  // detection
  ASSERT_FALSE(f.itr->rloc_reachable(kEtrRlocA));

  f.send_data();
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(1));
  // The packet went to backup B (whose ETR refuses to forward since the dst
  // host is not attached there in this fixture — we only check selection).
  EXPECT_EQ(f.etr_b->stats().decapsulated, 1u);
  EXPECT_EQ(f.itr->stats().miss_events, 0u);
}

TEST(RlocProbe, RecoveryMarksLocatorUpAgain) {
  Fixture f;
  f.link_a->set_up(false);
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(8));
  ASSERT_FALSE(f.itr->rloc_reachable(kEtrRlocA));

  f.link_a->set_up(true);
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(3));
  EXPECT_TRUE(f.itr->rloc_reachable(kEtrRlocA));
  EXPECT_GE(f.itr->stats().rlocs_marked_up, 1u);

  // Traffic returns to the primary.
  f.send_data();
  f.sim.run_until(f.sim.now() + sim::SimDuration::seconds(1));
  EXPECT_EQ(f.dst->received.size(), 1u);
}

TEST(RlocProbe, NoProbingWhenDisabled) {
  sim::Simulator sim;
  sim::Network net(sim);
  XtrConfig cfg;
  cfg.eid_space = {kEidSpace};
  auto& xtr = net.make<TunnelRouter>("plain", kItrRloc, cfg);
  MapEntry mapping;
  mapping.eid_prefix = kDstEids;
  mapping.rlocs = {Rloc{kEtrRlocA, 1, 100, true}};
  xtr.install_mapping(mapping);
  sim.run_until(sim.now() + sim::SimDuration::seconds(30));
  EXPECT_EQ(xtr.stats().probes_sent, 0u);
}

TEST(RlocProbe, ProbeWireRoundTrip) {
  RlocProbe probe(0xABCDEF0123ull, false);
  net::ByteWriter w;
  probe.serialize(w);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), probe.wire_size());
  net::ByteReader r(bytes);
  auto parsed = RlocProbe::parse_wire(r);
  EXPECT_EQ(parsed->nonce(), 0xABCDEF0123ull);
  EXPECT_FALSE(parsed->is_reply());

  RlocProbe reply(7, true);
  net::ByteWriter w2;
  reply.serialize(w2);
  auto bytes2 = w2.take();
  net::ByteReader r2(bytes2);
  EXPECT_TRUE(RlocProbe::parse_wire(r2)->is_reply());
}

}  // namespace
}  // namespace lispcp::lisp
