#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "metrics/histogram.hpp"
#include "metrics/table.hpp"

namespace lispcp::metrics {
namespace {

TEST(Summary, MomentsMatchClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeEqualsCombinedStream) {
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(100.0, 15.0);
  Summary left;
  Summary right;
  Summary combined;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    (i % 2 == 0 ? left : right).add(x);
    combined.add(x);
  }
  Summary merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_NEAR(merged.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), combined.min());
  EXPECT_DOUBLE_EQ(merged.max(), combined.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary empty;
  Summary filled;
  filled.add(3.0);
  Summary a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Summary b = empty;
  b.merge(filled);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, PercentilesWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 10'000; ++i) h.add(static_cast<double>(i));
  // Log-bucketing gives ~1.5% relative error per decade bucket.
  EXPECT_NEAR(h.p50(), 5000.0, 5000.0 * 0.03);
  EXPECT_NEAR(h.p95(), 9500.0, 9500.0 * 0.03);
  EXPECT_NEAR(h.p99(), 9900.0, 9900.0 * 0.03);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10'000.0);
}

TEST(Histogram, SubUnitValuesLandInZeroBucket) {
  Histogram h;
  h.add(0.0);
  h.add(0.5);
  h.add(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.percentile(0.34), 1.0);
}

TEST(Histogram, PercentileNeverExceedsMax) {
  Histogram h;
  h.add(123.456);
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(h.percentile(q), 123.456);
  }
}

TEST(Histogram, DurationHelperRecordsMicroseconds) {
  Histogram h;
  h.add_duration(sim::SimDuration::millis(3));
  EXPECT_NEAR(h.mean(), 3000.0, 1e-9);
}

TEST(Histogram, MergeAddsDistributions) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.add(10.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LE(a.p50(), 12.0);  // bucket upper bound of the 10.0 bucket
  EXPECT_GT(a.p95(), 900.0);
}

TEST(Histogram, BriefMentionsFields) {
  Histogram h;
  h.add(5.0);
  const auto text = h.brief("ms");
  EXPECT_NE(text.find("n=1"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

TEST(Table, AlignedOutput) {
  Table t({"control plane", "drops"});
  t.add_row({"lisp-alt", "120"});
  t.add_row({"lisp-pce", "0"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("| control plane | drops |"), std::string::npos);
  // Text cells left-align, numeric cells right-align.
  EXPECT_NE(text.find("| lisp-alt      |   120 |"), std::string::npos);
  EXPECT_NE(text.find("| lisp-pce      |     0 |"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(Table, NumericCellDetection) {
  EXPECT_TRUE(Table::is_numeric("42"));
  EXPECT_TRUE(Table::is_numeric("-3.5"));
  EXPECT_TRUE(Table::is_numeric("12.34%"));
  EXPECT_FALSE(Table::is_numeric(""));
  EXPECT_FALSE(Table::is_numeric("lisp-pce"));
  EXPECT_FALSE(Table::is_numeric("1.2.3"));
  EXPECT_FALSE(Table::is_numeric("-"));
  EXPECT_FALSE(Table::is_numeric("%"));
}

TEST(Table, WrongArityThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x", "has,comma"});
  t.add_row({"y", "has\"quote"});
  std::ostringstream os;
  t.to_csv(os);
  const auto text = os.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::percent(0.123456), "12.35%");
  EXPECT_EQ(Table::percent(0.5, 0), "50%");
}

}  // namespace
}  // namespace lispcp::metrics
