// Tests for the export update-group + interned-attribute pipeline: grouped
// fan-out must be byte-identical to the legacy per-neighbor export leg
// (BgpConfig::share_exports = false) for every shard count, with and
// without policy attached; AttrTable must dedupe and evict; and a
// post-convergence policy edit (the sanctioned kRefresh path) must rebuild
// the groups so the leak study converges to the same tables either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "routing/as_graph.hpp"
#include "routing/attr_table.hpp"
#include "routing/bgp.hpp"
#include "routing/dfz_study.hpp"

namespace lispcp::routing {
namespace {

/// Serialises everything observable about a converged fabric — stats,
/// Loc-RIBs with provenance and full paths, communities, and the
/// convergence instant.  Equal fingerprints mean equal results down to the
/// last counter, which is the grouped-vs-ungrouped contract.
std::string fingerprint(const BgpFabric& fabric) {
  std::ostringstream os;
  os << "t=" << fabric.now().ns() << "\n";
  for (AsNumber asn : fabric.graph().ases()) {
    const BgpSpeaker& speaker = fabric.speaker(asn);
    const BgpSpeakerStats& stats = speaker.stats();
    os << asn.to_string() << " " << stats.updates_sent << "/"
       << stats.updates_received << "/" << stats.routes_announced << "/"
       << stats.routes_withdrawn << "/" << stats.loops_rejected << "/"
       << stats.best_changes << "/" << stats.exports_filtered << "\n";
    for (const net::Ipv4Prefix& prefix : speaker.rib_prefixes()) {
      const auto* best = speaker.best(prefix);
      os << "  " << prefix.to_string() << " <- "
         << best->learned_from.to_string() << " k"
         << static_cast<int>(best->neighbor_kind) << " lp"
         << best->local_pref << " p";
      for (AsNumber hop : best->as_path()) os << " " << hop.value();
      os << " c";
      for (policy::Community c : best->communities()) os << " " << c;
      os << "\n";
    }
  }
  return os.str();
}

AsGraph test_internet(std::uint64_t seed) {
  SyntheticInternetConfig internet;
  internet.tier1_count = 3;
  internet.transit_count = 6;
  internet.stub_count = 30;
  internet.seed = seed;
  return build_synthetic_internet(internet);
}

/// Originates one prefix per AS (the property-sweep world) and converges.
std::string converge_and_fingerprint(
    const AsGraph& graph, std::size_t shards, bool share_exports,
    std::shared_ptr<const policy::PolicyTable> policy = nullptr) {
  BgpConfig config;
  config.shards = shards;
  config.shard_workers = 1;
  config.share_exports = share_exports;
  config.policy = std::move(policy);
  BgpFabric fabric(graph, config);
  const auto stubs = graph.ases_of_tier(AsTier::kStub);
  for (AsNumber asn : graph.ases()) {
    if (graph.tier(asn) == AsTier::kStub) {
      const auto it = std::find(stubs.begin(), stubs.end(), asn);
      fabric.apply({RouteDelta::announce(
          asn, stub_site_prefixes(
                   static_cast<std::size_t>(it - stubs.begin()), 1)[0])});
    } else {
      fabric.apply({RouteDelta::announce(asn, provider_aggregate(asn))});
    }
  }
  fabric.run_to_convergence();
  return fingerprint(fabric);
}

TEST(UpdateGroups, GroupedMatchesPerNeighborPolicyOff) {
  const AsGraph graph = test_internet(5);
  const std::string reference = converge_and_fingerprint(graph, 1, false);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    EXPECT_EQ(converge_and_fingerprint(graph, shards, true), reference)
        << "grouped export diverged from per-neighbor at K=" << shards;
  }
}

TEST(UpdateGroups, GroupedMatchesPerNeighborWithRoles) {
  const AsGraph graph = test_internet(9);
  const auto policy = policy::PolicyTable::gao_rexford(graph);
  const std::string reference =
      converge_and_fingerprint(graph, 1, false, policy);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    EXPECT_EQ(converge_and_fingerprint(graph, shards, true, policy), reference)
        << "grouped export diverged under role policy at K=" << shards;
  }
}

TEST(UpdateGroups, GroupedMatchesPerNeighborWithRouteMaps) {
  const AsGraph graph = test_internet(13);
  // Roles plus real export maps: a TE prepend toward half of each stub's
  // providers and a community tag on the rest, so sessions of the same
  // NeighborKind land in *different* update-groups and the map-evaluation
  // leg (prepend + community edits) is exercised through both code paths.
  const auto policy = policy::PolicyTable::gao_rexford(graph);
  policy::RouteMap& prepend_map = policy->add_map("te:prepend");
  prepend_map.add(policy::RouteMap::Action::kPermit).prepend(2);
  policy::RouteMap& tag_map = policy->add_map("te:tag");
  tag_map.add(policy::RouteMap::Action::kPermit).add_community(0x00FF0001u);
  for (const AsNumber stub : graph.ases_of_tier(AsTier::kStub)) {
    bool flip = false;
    for (const AsGraph::Neighbor& neighbor : graph.neighbors(stub)) {
      if (neighbor.kind != NeighborKind::kProvider) continue;
      policy->session(stub, neighbor.asn).export_map =
          flip ? &prepend_map : &tag_map;
      flip = !flip;
    }
  }
  const std::string reference =
      converge_and_fingerprint(graph, 1, false, policy);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    EXPECT_EQ(converge_and_fingerprint(graph, shards, true, policy), reference)
        << "grouped export diverged under export maps at K=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Churn: incremental vs full-replay, grouped vs ungrouped.

bool measures_eq(const ChurnEventMeasure& a, const ChurnEventMeasure& b) {
  return a.kind == b.kind && a.update_messages == b.update_messages &&
         a.route_records == b.route_records && a.settle_ms == b.settle_ms &&
         a.ases_touched == b.ases_touched &&
         a.engine_events == b.engine_events;
}

bool results_eq(const ChurnPlanResult& a, const ChurnPlanResult& b) {
  if (a.events.size() != b.events.size() || a.flaps != b.flaps ||
      a.update_messages != b.update_messages ||
      a.route_records != b.route_records ||
      a.engine_events != b.engine_events ||
      a.mean_updates_per_flap != b.mean_updates_per_flap ||
      a.mean_records_per_flap != b.mean_records_per_flap ||
      a.mean_settle_ms != b.mean_settle_ms ||
      a.max_settle_ms != b.max_settle_ms || a.span_ms != b.span_ms) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (!measures_eq(a.events[i], b.events[i])) return false;
  }
  return true;
}

TEST(UpdateGroups, ChurnPlanInvariantUnderSharingAndReplayMode) {
  DfzStudyConfig config;
  config.internet.tier1_count = 3;
  config.internet.transit_count = 5;
  config.internet.stub_count = 20;
  config.internet.seed = 11;
  config.scenario = AddressingScenario::kLegacyBgp;
  config.deaggregation_factor = 2;
  const ChurnPlan plan =
      make_flap_plan(5, config.internet.stub_count, 42,
                     sim::SimDuration::seconds(90),
                     sim::SimDuration::seconds(20));

  DfzStudyConfig ungrouped = config;
  ungrouped.bgp.share_exports = false;
  const ChurnPlanResult reference = run_churn_plan(ungrouped, plan);
  ASSERT_GT(reference.update_messages, 0u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    DfzStudyConfig grouped = config;
    grouped.bgp.shards = shards;
    const ChurnPlanResult incremental = run_churn_plan(grouped, plan);
    EXPECT_TRUE(results_eq(incremental, reference))
        << "grouped incremental churn diverged at K=" << shards;
    ChurnPlan replay = plan;
    replay.full_replay = true;
    EXPECT_TRUE(results_eq(run_churn_plan(grouped, replay), reference))
        << "grouped full-replay churn diverged at K=" << shards;
  }
}

// ---------------------------------------------------------------------------
// AttrTable: hash-consing, refcounts, eviction.

TEST(AttrTable, InternDedupesAndEvictsOnLastRelease) {
  AttrTable table;
  const std::vector<AsNumber> path{AsNumber{1}, AsNumber{2}};
  const std::vector<policy::Community> none;

  AttrRef a = table.intern(path, none, 0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(a.use_count(), 1u);

  AttrRef b = table.intern(path, none, 0);
  EXPECT_TRUE(a == b) << "equal content must resolve to the same node";
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(a.use_count(), 2u);

  // local_pref is part of the identity: a role import that pins a pref
  // must not collide with the raw path.
  AttrRef c = table.intern(path, none, 200);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(table.size(), 2u);

  b.reset();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(table.size(), 2u) << "a still holds its node live";
  c.reset();
  EXPECT_EQ(table.size(), 1u) << "last release must evict";
  a.reset();
  EXPECT_EQ(table.size(), 0u);
}

TEST(AttrTable, FabricChurnDoesNotAccreteDeadAttributeSets) {
  // A full announce/withdraw cycle must return the fabric's table to its
  // resting state (just the shared origin attributes): no RIB, ledger, or
  // recycled message shell may pin a dead path.
  const AsGraph graph = test_internet(7);
  BgpConfig config;
  BgpFabric fabric(graph, config);
  const std::size_t resting = fabric.attrs().size();
  ASSERT_GE(resting, 1u);  // the origin attribute set

  const net::Ipv4Prefix prefix = stub_site_prefixes(0, 1)[0];
  const AsNumber owner = graph.ases_of_tier(AsTier::kStub).front();
  fabric.apply({RouteDelta::announce(owner, prefix)});
  fabric.run_to_convergence();
  const std::size_t converged = fabric.attrs().size();
  EXPECT_GT(converged, resting) << "propagation must intern distinct paths";

  fabric.apply({RouteDelta::withdraw(owner, prefix)});
  fabric.run_to_convergence();
  EXPECT_EQ(fabric.attrs().size(), resting)
      << "withdrawal must release every interned path";

  // And a second identical cycle reproduces the same table population.
  fabric.apply({RouteDelta::announce(owner, prefix)});
  fabric.run_to_convergence();
  EXPECT_EQ(fabric.attrs().size(), converged);
}

TEST(AttrTable, PolicyOffImportSharesTheAdvertAttributes) {
  // On the policy-off hot path an accepted advert is stored by reference:
  // Adj-RIB-In and Loc-RIB add refs, not nodes.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  BgpFabric fabric(graph);
  const net::Ipv4Prefix prefix = net::Ipv4Prefix::from_string("100.0.0.0/20");

  const std::size_t resting = fabric.attrs().size();
  UpdateMessage msg;
  msg.announces.push_back(fabric.make_advert(prefix, {AsNumber{2}}));
  const AttrRef held = msg.announces[0].attrs;
  EXPECT_EQ(held.use_count(), 2u);  // msg + held

  fabric.speaker(AsNumber{1}).handle_update(AsNumber{2}, msg);
  EXPECT_EQ(fabric.attrs().size(), resting + 1)
      << "import must not intern a copy";
  EXPECT_EQ(held.use_count(), 4u) << "msg + held + Adj-RIB-In + Loc-RIB";

  UpdateMessage withdraw;
  withdraw.withdraws.push_back(prefix);
  fabric.speaker(AsNumber{1}).handle_update(AsNumber{2}, withdraw);
  EXPECT_EQ(held.use_count(), 2u);
}

// ---------------------------------------------------------------------------
// Group rebuild on the sanctioned policy-edit path (kRefresh).

TEST(UpdateGroups, RefreshRebuildsExportGroups) {
  // Multihomed stub: both provider sessions share one group until an
  // export map lands on one of them; the kRefresh delta is the sanctioned
  // edit point that must rebuild the partition.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kTransit);
  graph.add_as(AsNumber{3}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{3}, AsNumber{1});
  graph.add_customer_provider(AsNumber{3}, AsNumber{2});
  graph.add_peering(AsNumber{1}, AsNumber{2});

  // Converge, then attach an export map to ONE provider session and
  // refresh it — the sanctioned mid-life policy edit.  A refresh re-runs
  // the export leg (counters legitimately move), so the contract is
  // grouped-vs-ungrouped parity over the whole sequence, plus the group
  // partition actually splitting.
  const net::Ipv4Prefix prefix = net::Ipv4Prefix::from_string("100.0.0.0/20");
  const auto run_sequence = [&](bool share_exports) {
    const auto policy = policy::PolicyTable::gao_rexford(graph);
    BgpConfig config;
    config.policy = policy;
    config.share_exports = share_exports;
    BgpFabric fabric(graph, config);
    if (share_exports) {
      EXPECT_EQ(fabric.speaker(AsNumber{3}).export_group_count(), 1u)
          << "identical provider sessions must share one update-group";
    }
    fabric.apply({RouteDelta::announce(AsNumber{3}, prefix)});
    fabric.run_to_convergence();

    policy::RouteMap& prepend = policy->add_map("te:prepend");
    prepend.add(policy::RouteMap::Action::kPermit).prepend(1);
    policy->session(AsNumber{3}, AsNumber{1}).export_map = &prepend;
    fabric.apply({RouteDelta::refresh(AsNumber{3}, AsNumber{1})});
    fabric.run_to_convergence();
    if (share_exports) {
      EXPECT_EQ(fabric.speaker(AsNumber{3}).export_group_count(), 2u)
          << "kRefresh must rebuild the update-group partition";
    }
    return fingerprint(fabric);
  };
  const std::string grouped = run_sequence(true);
  EXPECT_EQ(grouped, run_sequence(false))
      << "grouped export diverged across a mid-life policy edit";
  EXPECT_NE(grouped.find("p 3 3"), std::string::npos)
      << "the prepended path must actually install at AS1";
}

TEST(UpdateGroups, RouteLeakStudyInvariantUnderSharing) {
  // The classic type-1 leak drops a session's valley-free gate and
  // refreshes it mid-study — the group key changes after convergence.  The
  // whole incident must measure identically grouped and ungrouped.
  DfzStudyConfig config;
  config.internet.tier1_count = 3;
  config.internet.transit_count = 5;
  config.internet.stub_count = 16;
  config.internet.seed = 21;
  config.scenario = AddressingScenario::kLegacyBgp;
  config.policy.roles = true;
  config.policy.event.kind = PolicyEvent::Kind::kRouteLeak;

  DfzStudyConfig ungrouped = config;
  ungrouped.bgp.share_exports = false;
  const PolicyEventResult a = run_policy_event(config);
  const PolicyEventResult b = run_policy_event(ungrouped);
  EXPECT_EQ(a.dfz_table_before, b.dfz_table_before);
  EXPECT_EQ(a.dfz_table_after, b.dfz_table_after);
  EXPECT_EQ(a.update_messages, b.update_messages);
  EXPECT_EQ(a.route_records, b.route_records);
  EXPECT_EQ(a.settle_ms, b.settle_ms);
  EXPECT_EQ(a.ases_touched, b.ases_touched);
  EXPECT_EQ(a.event_announcements, b.event_announcements);
  EXPECT_EQ(a.rib_delta, b.rib_delta);
  EXPECT_EQ(a.ases_preferring_actor, b.ases_preferring_actor);
  EXPECT_GT(a.update_messages, 0u) << "the leak must actually propagate";
}

}  // namespace
}  // namespace lispcp::routing
