// Arena-layer unit tests: the pooled-allocation and flat-container
// primitives the simulators' hot paths now sit on.
//  * core::Pool — slab stability, free-list recycling, generation bumps
//    that invalidate stale handles, capacity reuse across lifetimes;
//  * core::Recycler — bounded retirement, buffer-capacity reuse;
//  * core::InlineFunction — inline vs heap captures, move-only transfer,
//    destruction of captured state (leak-checked under the ASan CI leg);
//  * core::FlatMap / FlatSet — probe/erase/tombstone/rehash behaviour and
//    the sorted_keys() determinism contract the record pipeline relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/flat_map.hpp"
#include "core/inline_function.hpp"

namespace lispcp::core {
namespace {

TEST(Pool, AllocateReleaseRecyclesIndices) {
  Pool<int> pool;
  const std::uint32_t a = pool.allocate();
  pool[a] = 41;
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.capacity(), Pool<int>::kSlabSize);

  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);

  // The freed slot is handed out again before any fresh one.
  const std::uint32_t b = pool.allocate();
  EXPECT_EQ(b, a);
}

TEST(Pool, GenerationBumpInvalidatesStaleHandles) {
  Pool<int> pool;
  const std::uint32_t index = pool.allocate();
  const std::uint32_t before = pool.generation(index);
  pool.release(index);
  EXPECT_EQ(pool.generation(index), before + 1);

  // A second lifetime of the same slot has a distinct stamp, so an
  // (index, generation) handle from the first lifetime no longer matches.
  const std::uint32_t again = pool.allocate();
  ASSERT_EQ(again, index);
  EXPECT_NE(pool.generation(again), before);
}

TEST(Pool, SlabsNeverMove) {
  Pool<int> pool;
  const std::uint32_t first = pool.allocate();
  int* address = &pool[first];
  // Force several slab growths; the first slot must stay put (the event
  // queue holds raw references across schedule() calls).
  std::vector<std::uint32_t> held;
  for (std::size_t i = 0; i < Pool<int>::kSlabSize * 4; ++i) {
    held.push_back(pool.allocate());
  }
  EXPECT_GE(pool.capacity(), Pool<int>::kSlabSize * 4);
  EXPECT_EQ(&pool[first], address);
  for (const auto index : held) pool.release(index);
  pool.release(first);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, ReleasedSlotKeepsValueState) {
  Pool<std::vector<int>> pool;
  const std::uint32_t index = pool.allocate();
  pool[index].reserve(1024);
  const std::size_t kept = pool[index].capacity();
  pool.release(index);

  // Reuse is the point: the vector's buffer survives the release so the
  // next lifetime starts with capacity instead of growing from zero.
  const std::uint32_t again = pool.allocate();
  ASSERT_EQ(again, index);
  EXPECT_GE(pool[again].capacity(), kept);
}

TEST(Recycler, AcquireReusesRetiredBuffers) {
  Recycler<std::vector<int>> recycler;
  std::vector<int> buffer;
  buffer.reserve(512);
  recycler.release(std::move(buffer));
  EXPECT_EQ(recycler.retired(), 1u);

  std::vector<int> out = recycler.acquire();
  EXPECT_GE(out.capacity(), 512u);
  EXPECT_EQ(recycler.retired(), 0u);

  // Empty recycler hands back a fresh object.
  std::vector<int> fresh = recycler.acquire();
  EXPECT_EQ(fresh.capacity(), 0u);
}

TEST(Recycler, BoundDropsExcessRetirees) {
  Recycler<std::vector<int>> recycler(2);
  for (int i = 0; i < 5; ++i) {
    std::vector<int> v(8, i);
    recycler.release(std::move(v));
  }
  EXPECT_EQ(recycler.retired(), 2u);
}

TEST(InlineFunction, SmallCaptureStaysInlineAndRuns) {
  int target = 0;
  InlineFunction<void(), 88> fn = [&target] { target = 7; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(target, 7);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap) {
  // 128 bytes of captured state exceeds the 88-byte inline budget; the
  // callable must still work (and its heap block must be freed — the ASan
  // leg turns a leak here into a test failure).
  struct Big {
    double values[16];
  };
  Big big{};
  big.values[3] = 2.5;
  InlineFunction<double(), 88> fn = [big] { return big.values[3]; };
  EXPECT_EQ(fn(), 2.5);
}

TEST(InlineFunction, MoveTransfersCapturedState) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<void(), 88> a = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);

  InlineFunction<void(), 88> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
  b();
  EXPECT_EQ(*counter, 1);

  b = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // capture destroyed on reset
}

TEST(InlineFunction, MoveOnlyCapturesAreAccepted) {
  auto owned = std::make_unique<int>(11);
  InlineFunction<int(), 88> fn = [p = std::move(owned)] { return *p; };
  InlineFunction<int(), 88> moved = std::move(fn);
  EXPECT_EQ(moved(), 11);
}

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<int, std::string> map;
  EXPECT_TRUE(map.empty());
  map[3] = "three";
  map.insert_or_assign(5, "five");
  EXPECT_EQ(map.size(), 2u);

  ASSERT_NE(map.find(3), nullptr);
  EXPECT_EQ(*map.find(3), "three");
  EXPECT_EQ(map.find(4), nullptr);
  EXPECT_TRUE(map.contains(5));

  EXPECT_EQ(map.erase(3), 1u);
  EXPECT_EQ(map.erase(3), 0u);
  EXPECT_EQ(map.find(3), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, TryEmplaceReportsInsertion) {
  FlatMap<int, int> map;
  auto [slot, inserted] = map.try_emplace(9);
  EXPECT_TRUE(inserted);
  *slot = 90;
  auto [again, second] = map.try_emplace(9);
  EXPECT_FALSE(second);
  EXPECT_EQ(*again, 90);
}

TEST(FlatMap, SurvivesRehashAndTombstoneChurn) {
  FlatMap<int, int> map;
  // Insert enough to force several growth rehashes, delete half (piling up
  // tombstones), then verify every survivor is still reachable.
  for (int i = 0; i < 1000; ++i) map[i] = i * 2;
  for (int i = 0; i < 1000; i += 2) EXPECT_EQ(map.erase(i), 1u);
  EXPECT_EQ(map.size(), 500u);
  for (int i = 1; i < 1000; i += 2) {
    ASSERT_NE(map.find(i), nullptr) << i;
    EXPECT_EQ(*map.find(i), i * 2);
  }
  for (int i = 0; i < 1000; i += 2) EXPECT_EQ(map.find(i), nullptr) << i;

  // Keep churning through the same keys: tombstone-heavy tables must
  // rehash in place rather than grow without bound or lose entries.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 1000; i += 2) map[i] = round;
    for (int i = 0; i < 1000; i += 2) map.erase(i);
  }
  EXPECT_EQ(map.size(), 500u);
}

// The determinism contract behind the byte-identical-records guarantee:
// whatever order keys were inserted or erased in — and whatever capacity
// history the table went through — sorted_keys() is the same sequence.
// Record emission and event ordering route through this view only.
TEST(FlatMap, SortedKeysIndependentOfInsertionHistory) {
  std::vector<int> keys(257);
  for (int i = 0; i < 257; ++i) keys[i] = i * 13 + 1;

  FlatMap<int, int> forward;
  for (const int k : keys) forward[k] = k;

  // Same keys, shuffled order, via a table with a very different capacity
  // history (pre-churn inserts + erases before the real content lands).
  FlatMap<int, int> churned;
  for (int i = 0; i < 2000; ++i) churned[-i - 1] = i;
  for (int i = 0; i < 2000; ++i) churned.erase(-i - 1);
  std::vector<int> shuffled = keys;
  std::mt19937 rng(1234);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  for (const int k : shuffled) churned[k] = k;

  const std::vector<int> a = forward.sorted_keys();
  const std::vector<int> b = churned.sorted_keys();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(a.size(), keys.size());
}

TEST(FlatSet, InsertContainsEraseSorted) {
  FlatSet<int> set;
  EXPECT_TRUE(set.insert(4));
  EXPECT_FALSE(set.insert(4));
  EXPECT_TRUE(set.insert(2));
  EXPECT_TRUE(set.contains(2));
  EXPECT_EQ(set.size(), 2u);

  const std::vector<int> sorted = set.sorted_keys();
  EXPECT_EQ(sorted, (std::vector<int>{2, 4}));

  EXPECT_EQ(set.erase(4), 1u);
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FlatMap, ForEachVisitsEveryLiveEntry) {
  FlatMap<int, int> map;
  for (int i = 0; i < 64; ++i) map[i] = i;
  map.erase(10);
  std::size_t count = 0;
  long long sum = 0;
  map.for_each([&](const int key, const int value) {
    EXPECT_EQ(key, value);
    ++count;
    sum += value;
  });
  EXPECT_EQ(count, 63u);
  EXPECT_EQ(sum, 64LL * 63 / 2 - 10);
}

}  // namespace
}  // namespace lispcp::core
