// Replicated Map-Resolver tier tests: shard/replica construction, nearest-
// replica selection, tie-rotation load spreading, end-to-end resolution,
// and retry rotation onto the next replica when the nearest one is dead.
#include <gtest/gtest.h>

#include <algorithm>

#include "lisp/resolution.hpp"
#include "mapping/replicated_resolver.hpp"
#include "scenario/experiment.hpp"
#include "topo/address_plan.hpp"

namespace lispcp {
namespace {

using mapping::ControlPlaneKind;
using mapping::ReplicatedResolverSystem;
using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::InternetSpec;

ExperimentConfig repl_config(std::size_t domains = 12,
                             std::size_t replicas = 4) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(ControlPlaneKind::kMsReplicated);
  config.spec.domains = domains;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.ms_replica_count = replicas;
  config.spec.seed = 11;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(10);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

TEST(ReplicatedResolver, BuildsShardAndReplicaTiers) {
  Experiment experiment(repl_config(12, 4));
  auto& internet = experiment.internet();
  EXPECT_EQ(internet.map_servers().size(), internet.spec().map_server_count);
  ASSERT_EQ(internet.map_resolvers().size(), 4u);
  // One registration loop per site, against the sharded MS tier.
  EXPECT_EQ(internet.registrars().size(), 12u);
  // Replicated: every replica holds the full prefix-to-shard table.
  for (const auto* mr : internet.map_resolvers()) {
    EXPECT_EQ(mr->route_count(), 12u);
  }
}

TEST(ReplicatedResolver, ReplicaCountClampsToDomains) {
  Experiment experiment(repl_config(/*domains=*/4, /*replicas=*/64));
  EXPECT_EQ(experiment.internet().map_resolvers().size(), 4u);
}

TEST(ReplicatedResolver, HomeDomainsSpreadEvenly) {
  EXPECT_EQ(ReplicatedResolverSystem::replica_home_domain(0, 4, 12), 0u);
  EXPECT_EQ(ReplicatedResolverSystem::replica_home_domain(1, 4, 12), 3u);
  EXPECT_EQ(ReplicatedResolverSystem::replica_home_domain(2, 4, 12), 6u);
  EXPECT_EQ(ReplicatedResolverSystem::replica_home_domain(3, 4, 12), 9u);
  EXPECT_EQ(ReplicatedResolverSystem::replica_home_domain(2, 3, 12), 8u);
}

TEST(ReplicatedResolver, SingleSourceResolvesViaItsNearestReplica) {
  auto config = repl_config(12, 4);
  config.mode = scenario::TrafficMode::kSingleSource;
  Experiment experiment(config);
  const auto summary = experiment.run();
  EXPECT_GT(summary.miss_events, 0u);
  auto& internet = experiment.internet();
  // Domain 0 hosts a replica; with no retries in play, every Map-Request
  // from its ITRs lands there and nowhere else.
  EXPECT_GT(internet.map_resolvers()[0]->stats().requests_received, 0u);
  for (std::size_t r = 1; r < internet.map_resolvers().size(); ++r) {
    EXPECT_EQ(internet.map_resolvers()[r]->stats().requests_received, 0u) << r;
  }
}

TEST(ReplicatedResolver, TieRotationSpreadsRemoteDomains) {
  auto config = repl_config(12, 4);
  config.mode = scenario::TrafficMode::kAllToAll;
  config.traffic.sessions_per_second = 40;
  Experiment experiment(config);
  experiment.run();
  std::uint64_t total = 0, hottest = 0;
  for (const auto* mr : experiment.internet().map_resolvers()) {
    total += mr->stats().requests_received;
    hottest = std::max<std::uint64_t>(hottest, mr->stats().requests_received);
  }
  ASSERT_GT(total, 0u);
  // Without tie rotation every remote domain funnels to replica 0 (~3/4 of
  // all requests here); with it no replica should be close to that.
  EXPECT_LT(static_cast<double>(hottest), 0.6 * static_cast<double>(total));
}

TEST(ReplicatedResolver, QueuedPacketsResolveEndToEnd) {
  auto config = repl_config(12, 4);
  config.spec.miss_policy = lisp::MissPolicy::kQueue;
  Experiment experiment(config);
  const auto summary = experiment.run();
  EXPECT_GT(summary.miss_events, 0u);
  EXPECT_EQ(summary.miss_drops, 0u);
  EXPECT_EQ(summary.established, summary.sessions);
  // The resolution queue saw real waiting time (the front-end RTT).
  EXPECT_GT(experiment.internet().merged_queue_delay().count(), 0u);
}

TEST(ReplicatedResolver, RetryRotatesToTheNextReplicaWhenNearestIsDead) {
  auto config = repl_config(12, 4);
  config.spec.miss_policy = lisp::MissPolicy::kQueue;
  Experiment experiment(config);
  auto& internet = experiment.internet();
  // Re-point domain 0's ITRs at a replica set whose nearest member does not
  // exist: the first transmission is lost, the retry must rotate onto the
  // live replica and resolve.
  const auto dead = topo::replica_resolver_addr(200);
  const auto live = internet.map_resolvers()[0]->address();
  for (auto* xtr : internet.domain(0).xtrs) {
    xtr->set_resolution_strategy(std::make_unique<lisp::ReplicaPullResolution>(
        std::vector<net::Ipv4Address>{dead, live}));
  }
  const auto summary = experiment.run();
  EXPECT_EQ(summary.established, summary.sessions);
  std::uint64_t retries = 0, replies = 0;
  for (auto* xtr : internet.domain(0).xtrs) {
    retries += xtr->stats().map_request_retries;
    replies += xtr->stats().map_replies_received;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(replies, 0u);
}

TEST(ReplicaPullResolution, RejectsEmptyReplicaSet) {
  EXPECT_THROW(lisp::ReplicaPullResolution(std::vector<net::Ipv4Address>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lispcp
