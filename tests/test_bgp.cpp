// Tests for routing/bgp: decision process, Gao-Rexford export policy, loop
// rejection, withdrawal convergence, MRAI batching, and the valley-free /
// loop-free invariants on converged synthetic Internets (TEST_P sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "routing/as_graph.hpp"
#include "routing/bgp.hpp"
#include "routing/dfz_study.hpp"

namespace lispcp::routing {
namespace {

const net::Ipv4Prefix kPrefix = net::Ipv4Prefix::from_string("100.0.0.0/20");

/// Two-node customer-provider line.
struct Line {
  Line() {
    graph.add_as(AsNumber{1}, AsTier::kTransit);
    graph.add_as(AsNumber{2}, AsTier::kStub);
    graph.add_customer_provider(AsNumber{2}, AsNumber{1});
    fabric = std::make_unique<BgpFabric>(graph);
  }
  AsGraph graph;
  std::unique_ptr<BgpFabric> fabric;
};

TEST(Bgp, OriginationInstallsLocally) {
  Line line;
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  const auto* best = line.fabric->speaker(AsNumber{2}).best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_TRUE(best->local_origin);
  EXPECT_TRUE(best->as_path().empty());
}

TEST(Bgp, ProviderLearnsCustomerRoute) {
  Line line;
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  const auto* best = line.fabric->speaker(AsNumber{1}).best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_FALSE(best->local_origin);
  EXPECT_EQ(best->learned_from, AsNumber{2});
  EXPECT_EQ(best->neighbor_kind, NeighborKind::kCustomer);
  ASSERT_EQ(best->as_path().size(), 1u);
  EXPECT_EQ(best->as_path()[0], AsNumber{2});
}

TEST(Bgp, WithdrawRemovesEverywhere) {
  Line line;
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  ASSERT_NE(line.fabric->speaker(AsNumber{1}).best(kPrefix), nullptr);

  line.fabric->apply({RouteDelta::withdraw(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  EXPECT_EQ(line.fabric->speaker(AsNumber{1}).best(kPrefix), nullptr);
  EXPECT_EQ(line.fabric->speaker(AsNumber{2}).best(kPrefix), nullptr);
  EXPECT_GE(line.fabric->total_routes_withdrawn(), 1u);
}

TEST(Bgp, WithdrawOfUnknownOriginIsNoOp) {
  Line line;
  line.fabric->apply({RouteDelta::withdraw(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  EXPECT_EQ(line.fabric->total_updates_sent(), 0u);
}

TEST(Bgp, CustomerRoutePreferredOverProvider) {
  // AS 3 hears kPrefix from its customer 4 (longer path) and its provider 1
  // (shorter path); the customer route must win.
  //
  //        1 (tier1) --- 2 (origin, customer of 1)
  //        |
  //        3 (transit, customer of 1)
  //        |
  //        4 (stub, customer of 3, also customer of 1's sibling... )
  //
  // Build: origin 2 is customer of 1 AND customer of 4, so 3 hears
  // [1, 2] from provider 1 and [4, 2] from customer 4.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_as(AsNumber{3}, AsTier::kTransit);
  graph.add_as(AsNumber{4}, AsTier::kTransit);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  graph.add_customer_provider(AsNumber{2}, AsNumber{4});
  graph.add_customer_provider(AsNumber{3}, AsNumber{1});
  graph.add_customer_provider(AsNumber{4}, AsNumber{3});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  fabric.run_to_convergence();

  const auto* best = fabric.speaker(AsNumber{3}).best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->neighbor_kind, NeighborKind::kCustomer);
  EXPECT_EQ(best->learned_from, AsNumber{4});
  EXPECT_EQ(best->as_path().size(), 2u) << "customer path [4, 2] wins over "
                                         "provider path [1, 2] despite equal "
                                         "length by relationship preference";
}

TEST(Bgp, ShorterPathWinsWithinSameRelationship) {
  // AS 1 hears kPrefix from two customers: 2 directly, and via 3->2.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_as(AsNumber{3}, AsTier::kTransit);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  graph.add_customer_provider(AsNumber{2}, AsNumber{3});
  graph.add_customer_provider(AsNumber{3}, AsNumber{1});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  fabric.run_to_convergence();

  const auto* best = fabric.speaker(AsNumber{1}).best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, AsNumber{2});
  EXPECT_EQ(best->as_path().size(), 1u);
}

TEST(Bgp, LowestNeighborAsnBreaksTies) {
  // Two equal-length customer paths to AS 9: via 2 and via 3.
  AsGraph graph;
  graph.add_as(AsNumber{9}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kTransit);
  graph.add_as(AsNumber{3}, AsTier::kTransit);
  graph.add_as(AsNumber{5}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{9});
  graph.add_customer_provider(AsNumber{3}, AsNumber{9});
  graph.add_customer_provider(AsNumber{5}, AsNumber{2});
  graph.add_customer_provider(AsNumber{5}, AsNumber{3});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{5}, kPrefix)});
  fabric.run_to_convergence();

  const auto* best = fabric.speaker(AsNumber{9}).best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->as_path().size(), 2u);
  EXPECT_EQ(best->learned_from, AsNumber{2}) << "deterministic lowest-ASN tie-break";
}

TEST(Bgp, ValleyFreeExport_PeerRouteNotGivenToPeer) {
  // M peers with both P and Q; P originates.  Q must not learn the prefix
  // through M (peer->peer is a valley).
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);  // M
  graph.add_as(AsNumber{2}, AsTier::kTier1);  // P (origin)
  graph.add_as(AsNumber{3}, AsTier::kTier1);  // Q
  graph.add_peering(AsNumber{1}, AsNumber{2});
  graph.add_peering(AsNumber{1}, AsNumber{3});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  fabric.run_to_convergence();

  EXPECT_NE(fabric.speaker(AsNumber{1}).best(kPrefix), nullptr);
  EXPECT_EQ(fabric.speaker(AsNumber{3}).best(kPrefix), nullptr)
      << "peer-learned route leaked to another peer";
}

TEST(Bgp, ValleyFreeExport_ProviderRouteGoesOnlyToCustomers) {
  // Provider 1 originates; transit 2 (customer of 1) must pass it down to
  // its own customer 3 but not up/sideways.  Peer 4 of AS 2 must not hear it.
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTier1);
  graph.add_as(AsNumber{2}, AsTier::kTransit);
  graph.add_as(AsNumber{3}, AsTier::kStub);
  graph.add_as(AsNumber{4}, AsTier::kTransit);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  graph.add_customer_provider(AsNumber{3}, AsNumber{2});
  graph.add_peering(AsNumber{2}, AsNumber{4});
  BgpFabric fabric(graph);
  fabric.apply({RouteDelta::announce(AsNumber{1}, kPrefix)});
  fabric.run_to_convergence();

  EXPECT_NE(fabric.speaker(AsNumber{3}).best(kPrefix), nullptr)
      << "provider routes must reach customers";
  EXPECT_EQ(fabric.speaker(AsNumber{4}).best(kPrefix), nullptr)
      << "provider-learned route leaked to a peer";
}

TEST(Bgp, LoopedAdvertIsRejectedAndReplacesOldRoute) {
  Line line;
  BgpSpeaker& provider = line.fabric->speaker(AsNumber{1});
  // A valid route first.
  UpdateMessage good;
  good.announces.push_back(line.fabric->make_advert(kPrefix, {AsNumber{2}}));
  provider.handle_update(AsNumber{2}, good);
  ASSERT_NE(provider.best(kPrefix), nullptr);

  // Then the same neighbor advertises a path containing AS 1 itself.
  UpdateMessage looped;
  looped.announces.push_back(line.fabric->make_advert(
      kPrefix, {AsNumber{2}, AsNumber{1}, AsNumber{7}}));
  provider.handle_update(AsNumber{2}, looped);
  EXPECT_EQ(provider.stats().loops_rejected, 1u);
  EXPECT_EQ(provider.best(kPrefix), nullptr)
      << "update semantics: the looped advert implicitly withdraws the "
         "neighbor's previous usable path";
}

TEST(Bgp, ImplicitReplaceOnNewAdvert) {
  Line line;
  BgpSpeaker& provider = line.fabric->speaker(AsNumber{1});
  UpdateMessage first;
  first.announces.push_back(line.fabric->make_advert(
      kPrefix, {AsNumber{2}, AsNumber{8}, AsNumber{9}}));
  provider.handle_update(AsNumber{2}, first);
  ASSERT_EQ(provider.best(kPrefix)->as_path().size(), 3u);

  UpdateMessage second;
  second.announces.push_back(line.fabric->make_advert(kPrefix, {AsNumber{2}}));
  provider.handle_update(AsNumber{2}, second);
  EXPECT_EQ(provider.best(kPrefix)->as_path().size(), 1u);
}

TEST(Bgp, MraiBatchesMultiplePrefixesIntoOneUpdate) {
  Line line;
  const BgpSpeaker& stub = line.fabric->speaker(AsNumber{2});
  line.fabric->apply({
      RouteDelta::announce(AsNumber{2},
                           net::Ipv4Prefix::from_string("100.0.0.0/22")),
      RouteDelta::announce(AsNumber{2},
                           net::Ipv4Prefix::from_string("100.0.4.0/22")),
      RouteDelta::announce(AsNumber{2},
                           net::Ipv4Prefix::from_string("100.0.8.0/22")),
  });
  line.fabric->run_to_convergence();
  // One session, one MRAI window: exactly one flush carrying 3 records.
  EXPECT_EQ(stub.stats().updates_sent, 1u);
  EXPECT_EQ(stub.stats().routes_announced, 3u);
  EXPECT_EQ(line.fabric->speaker(AsNumber{1}).rib_size(), 3u);
}

TEST(Bgp, AnnounceThenWithdrawWithinMraiSendsNothing) {
  Line line;
  const BgpSpeaker& stub = line.fabric->speaker(AsNumber{2});
  // One batch, withdraw cancelling the announce before the MRAI flush.
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix),
                      RouteDelta::withdraw(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  EXPECT_EQ(stub.stats().updates_sent, 0u);
  EXPECT_EQ(line.fabric->speaker(AsNumber{1}).rib_size(), 0u);
}

TEST(Bgp, StatsCountMessages) {
  Line line;
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  line.fabric->run_to_convergence();
  EXPECT_EQ(line.fabric->speaker(AsNumber{2}).stats().updates_sent, 1u);
  EXPECT_EQ(line.fabric->speaker(AsNumber{1}).stats().updates_received, 1u);
  EXPECT_EQ(line.fabric->total_routes_announced(), 1u);
}

TEST(Bgp, UnknownSpeakerThrows) {
  Line line;
  EXPECT_THROW((void)line.fabric->speaker(AsNumber{42}), std::out_of_range);
  EXPECT_THROW((void)line.fabric->kind_of(AsNumber{1}, AsNumber{42}),
               std::out_of_range);
}

TEST(Bgp, ConvergedMeansNoForegroundWork) {
  Line line;
  EXPECT_TRUE(line.fabric->converged());
  line.fabric->apply({RouteDelta::announce(AsNumber{2}, kPrefix)});
  EXPECT_FALSE(line.fabric->converged());
  line.fabric->run_to_convergence();
  EXPECT_TRUE(line.fabric->converged());
}

// ---------------------------------------------------------------------------
// Property sweep: on converged synthetic Internets, every installed path is
// loop-free and valley-free, and everyone can reach every provider aggregate.

class BgpConvergenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpConvergenceProperty, PathsAreLoopAndValleyFree) {
  SyntheticInternetConfig internet;
  internet.tier1_count = 3;
  internet.transit_count = 6;
  internet.stub_count = 25;
  internet.seed = GetParam();
  const AsGraph graph = build_synthetic_internet(internet);
  BgpFabric fabric(graph);

  // Every AS originates one prefix (its provider aggregate or site block).
  std::map<std::uint32_t, net::Ipv4Prefix> origin_of;
  const auto stubs = graph.ases_of_tier(AsTier::kStub);
  for (AsNumber asn : graph.ases()) {
    net::Ipv4Prefix prefix;
    if (graph.tier(asn) == AsTier::kStub) {
      const auto it = std::find(stubs.begin(), stubs.end(), asn);
      prefix = stub_site_prefixes(
          static_cast<std::size_t>(it - stubs.begin()), 1)[0];
    } else {
      prefix = provider_aggregate(asn);
    }
    origin_of[asn.value()] = prefix;
    fabric.apply({RouteDelta::announce(asn, prefix)});
  }
  fabric.run_to_convergence();

  // Reconstruct each installed AS-path and check the invariants.
  const auto kind_between = [&graph](AsNumber self, AsNumber neighbor) {
    for (const auto& n : graph.neighbors(self)) {
      if (n.asn == neighbor) return n.kind;
    }
    throw std::logic_error("installed path uses a non-adjacent hop");
  };
  for (AsNumber asn : graph.ases()) {
    const BgpSpeaker& speaker = fabric.speaker(asn);
    for (const net::Ipv4Prefix& prefix : speaker.rib_prefixes()) {
      const auto* best = speaker.best(prefix);
      ASSERT_NE(best, nullptr);
      if (best->local_origin) continue;

      // Loop freedom: self plus the advertised path has no repeats.
      std::vector<AsNumber> full{asn};
      full.insert(full.end(), best->as_path().begin(), best->as_path().end());
      std::set<std::uint32_t> seen;
      for (AsNumber hop : full) {
        EXPECT_TRUE(seen.insert(hop.value()).second)
            << "loop in installed path at " << hop.to_string();
      }

      // Valley freedom: once the path goes down (provider->customer) or
      // crosses a peering, it may never go up or peer again.  Walking from
      // self toward the origin, hop i uses the relationship of full[i+1] as
      // seen from full[i].
      bool descending = false;
      for (std::size_t i = 0; i + 1 < full.size(); ++i) {
        const NeighborKind kind = kind_between(full[i], full[i + 1]);
        // kProvider means full[i+1] is full[i]'s provider: an "up" step.
        if (kind == NeighborKind::kProvider) {
          EXPECT_FALSE(descending)
              << "valley: up-step after down/peer in path of "
              << asn.to_string();
        } else {
          descending = true;  // peer or customer step
        }
      }

      // The path must end at the true originator.
      EXPECT_EQ(origin_of.at(full.back().value()), prefix)
          << "path does not terminate at the origin AS";
    }
  }

  // Reachability: every AS holds a route to every tier-1 aggregate (they
  // are everyone's direct or indirect provider).
  for (AsNumber asn : graph.ases()) {
    for (AsNumber t1 : graph.ases_of_tier(AsTier::kTier1)) {
      EXPECT_NE(fabric.speaker(asn).best(origin_of.at(t1.value())), nullptr)
          << asn.to_string() << " cannot reach " << t1.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpConvergenceProperty,
                         ::testing::Values(1, 2, 3, 7, 11, 23, 42, 97));

// ---------------------------------------------------------------------------
// DFZ study harness.

TEST(DfzStudy, StubSitePrefixesPartitionTheBlock) {
  const auto whole = stub_site_prefixes(3, 1);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].length(), 20);

  const auto pieces = stub_site_prefixes(3, 8);
  ASSERT_EQ(pieces.size(), 8u);
  std::uint64_t covered = 0;
  for (const auto& piece : pieces) {
    EXPECT_EQ(piece.length(), 23);
    EXPECT_TRUE(whole[0].contains(piece));
    covered += piece.size();
  }
  EXPECT_EQ(covered, whole[0].size());
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_FALSE(pieces[i - 1].contains(pieces[i]));
    EXPECT_FALSE(pieces[i].contains(pieces[i - 1]));
  }
}

TEST(DfzStudy, StubBlocksAreDisjointAcrossSites) {
  const auto a = stub_site_prefixes(0, 1)[0];
  const auto b = stub_site_prefixes(1, 1)[0];
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(DfzStudy, InvalidDeaggregationFactorThrows) {
  EXPECT_THROW(stub_site_prefixes(0, 0), std::invalid_argument);
  EXPECT_THROW(stub_site_prefixes(0, 3), std::invalid_argument);
  EXPECT_THROW(stub_site_prefixes(0, 8192), std::invalid_argument);
}

TEST(DfzStudy, ProviderAggregatesAreDisjoint) {
  const auto a = provider_aggregate(AsNumber{1});
  const auto b = provider_aggregate(AsNumber{2});
  EXPECT_EQ(a.length(), 12);
  EXPECT_FALSE(a.contains(b));
}

DfzStudyConfig small_study(AddressingScenario scenario, std::size_t deagg) {
  DfzStudyConfig config;
  config.internet.tier1_count = 3;
  config.internet.transit_count = 5;
  config.internet.stub_count = 20;
  config.scenario = scenario;
  config.deaggregation_factor = deagg;
  return config;
}

TEST(DfzStudy, LegacyDfzHoldsEveryPrefix) {
  const auto result = run_dfz_study(small_study(AddressingScenario::kLegacyBgp, 1));
  // 8 provider aggregates + 20 stub blocks, all visible at the tier-1.
  EXPECT_EQ(result.bgp_origin_prefixes, 28u);
  EXPECT_EQ(result.dfz_table_size, 28u);
  EXPECT_EQ(result.mapping_system_entries, 0u);
  EXPECT_GT(result.update_messages, 0u);
  EXPECT_GT(result.convergence_ms, 0.0);
}

TEST(DfzStudy, LispDfzHoldsOnlyProviderAggregates) {
  const auto result =
      run_dfz_study(small_study(AddressingScenario::kLispRlocOnly, 1));
  EXPECT_EQ(result.bgp_origin_prefixes, 8u);
  EXPECT_EQ(result.dfz_table_size, 8u);
  EXPECT_EQ(result.mapping_system_entries, 20u);
}

TEST(DfzStudy, DeaggregationMultipliesLegacyTableNotLisp) {
  const auto legacy4 =
      run_dfz_study(small_study(AddressingScenario::kLegacyBgp, 4));
  EXPECT_EQ(legacy4.dfz_table_size, 8u + 20u * 4u);
  const auto lisp4 =
      run_dfz_study(small_study(AddressingScenario::kLispRlocOnly, 4));
  EXPECT_EQ(lisp4.dfz_table_size, 8u);
  EXPECT_EQ(lisp4.mapping_system_entries, 80u);
}

TEST(DfzStudy, RehomingChurnIsZeroUnderLisp) {
  const auto churn =
      run_rehoming_churn(small_study(AddressingScenario::kLispRlocOnly, 1));
  EXPECT_EQ(churn.update_messages, 0u);
  EXPECT_EQ(churn.ases_touched, 0u);
}

TEST(DfzStudy, RehomingChurnIsGlobalUnderLegacyBgp) {
  const auto churn =
      run_rehoming_churn(small_study(AddressingScenario::kLegacyBgp, 1));
  EXPECT_GT(churn.update_messages, 0u);
  EXPECT_GT(churn.route_records, 0u);
  EXPECT_GT(churn.ases_touched, 5u)
      << "a stub flap should ripple well beyond its providers";
  EXPECT_GT(churn.settle_ms, 0.0);
}

TEST(DfzStudy, ChurnScalesWithDeaggregation) {
  const auto one =
      run_rehoming_churn(small_study(AddressingScenario::kLegacyBgp, 1));
  const auto four =
      run_rehoming_churn(small_study(AddressingScenario::kLegacyBgp, 4));
  EXPECT_GT(four.route_records, one.route_records)
      << "each more-specific multiplies the records in the flap";
}

// ---------------------------------------------------------------------------
// Sharded convergence engine: results are byte-identical for every shard
// count and worker count, and repeated runs reproduce themselves.

/// Serialises everything observable about a converged fabric: every
/// speaker's stats and Loc-RIB (prefix, provenance, full AS path) plus the
/// convergence instant.  Two equal fingerprints mean equal results down to
/// the last counter.
std::string fingerprint(const BgpFabric& fabric) {
  std::ostringstream os;
  os << "t=" << fabric.now().ns() << "\n";
  for (AsNumber asn : fabric.graph().ases()) {
    const BgpSpeaker& speaker = fabric.speaker(asn);
    const BgpSpeakerStats& stats = speaker.stats();
    os << asn.to_string() << " " << stats.updates_sent << "/"
       << stats.updates_received << "/" << stats.routes_announced << "/"
       << stats.routes_withdrawn << "/" << stats.loops_rejected << "/"
       << stats.best_changes << "\n";
    for (const net::Ipv4Prefix& prefix : speaker.rib_prefixes()) {
      const auto* best = speaker.best(prefix);
      os << "  " << prefix.to_string() << " <- "
         << best->learned_from.to_string() << " k"
         << static_cast<int>(best->neighbor_kind) << " p";
      for (AsNumber hop : best->as_path()) os << " " << hop.value();
      os << "\n";
    }
  }
  return os.str();
}

/// Builds the property-sweep world (every AS originates one prefix) on a
/// fabric with the given engine parameters and converges it.
std::string converge_and_fingerprint(const AsGraph& graph, std::size_t shards,
                                     std::size_t workers) {
  BgpConfig config;
  config.shards = shards;
  config.shard_workers = workers;
  BgpFabric fabric(graph, config);
  const auto stubs = graph.ases_of_tier(AsTier::kStub);
  for (AsNumber asn : graph.ases()) {
    if (graph.tier(asn) == AsTier::kStub) {
      const auto it = std::find(stubs.begin(), stubs.end(), asn);
      fabric.apply({RouteDelta::announce(
          asn, stub_site_prefixes(
                   static_cast<std::size_t>(it - stubs.begin()), 1)[0])});
    } else {
      fabric.apply({RouteDelta::announce(asn, provider_aggregate(asn))});
    }
  }
  fabric.run_to_convergence();
  return fingerprint(fabric);
}

TEST(ShardedBgp, ResultsAreShardCountInvariant) {
  SyntheticInternetConfig internet;
  internet.tier1_count = 3;
  internet.transit_count = 6;
  internet.stub_count = 30;
  internet.seed = 5;
  const AsGraph graph = build_synthetic_internet(internet);
  const std::string reference = converge_and_fingerprint(graph, 1, 1);
  for (const std::size_t shards : {2u, 3u, 8u}) {
    EXPECT_EQ(converge_and_fingerprint(graph, shards, 1), reference)
        << "shard count " << shards << " changed the converged state";
  }
}

TEST(ShardedBgp, ResultsAreWorkerCountInvariant) {
  SyntheticInternetConfig internet;
  internet.tier1_count = 3;
  internet.transit_count = 5;
  internet.stub_count = 24;
  internet.seed = 9;
  const AsGraph graph = build_synthetic_internet(internet);
  // Force more workers than this host may have cores: determinism must not
  // depend on scheduling.
  const std::string reference = converge_and_fingerprint(graph, 4, 1);
  EXPECT_EQ(converge_and_fingerprint(graph, 4, 2), reference);
  EXPECT_EQ(converge_and_fingerprint(graph, 4, 4), reference);
}

TEST(ShardedBgp, SpeakersAreHomedDeterministically) {
  SyntheticInternetConfig internet;
  internet.stub_count = 16;
  const AsGraph graph = build_synthetic_internet(internet);
  BgpConfig config;
  config.shards = 4;
  BgpFabric a(graph, config);
  BgpFabric b(graph, config);
  for (AsNumber asn : graph.ases()) {
    EXPECT_EQ(a.engine().shard_of(asn), b.engine().shard_of(asn));
    EXPECT_LT(a.engine().shard_of(asn), 4u);
  }
}

TEST(ShardedBgp, ShardingRequiresPositiveSessionDelay) {
  AsGraph graph;
  graph.add_as(AsNumber{1}, AsTier::kTransit);
  graph.add_as(AsNumber{2}, AsTier::kStub);
  graph.add_customer_provider(AsNumber{2}, AsNumber{1});
  BgpConfig config;
  config.session_delay = sim::SimDuration{};
  config.session_jitter = sim::SimDuration{};
  config.shards = 2;
  EXPECT_THROW(BgpFabric(graph, config), std::invalid_argument);
}

bool operator_eq(const RehomingChurnResult& a, const RehomingChurnResult& b) {
  return a.update_messages == b.update_messages &&
         a.route_records == b.route_records && a.settle_ms == b.settle_ms &&
         a.ases_touched == b.ases_touched;
}

bool operator_eq(const DfzStudyResult& a, const DfzStudyResult& b) {
  return a.dfz_table_size == b.dfz_table_size &&
         a.mean_rib_size == b.mean_rib_size &&
         a.max_rib_size == b.max_rib_size &&
         a.update_messages == b.update_messages &&
         a.route_records == b.route_records &&
         a.convergence_ms == b.convergence_ms &&
         a.mapping_system_entries == b.mapping_system_entries &&
         a.bgp_origin_prefixes == b.bgp_origin_prefixes;
}

TEST(ShardedBgp, RehomingChurnIsDeterministicAcrossShardsAndRuns) {
  DfzStudyConfig config = small_study(AddressingScenario::kLegacyBgp, 4);
  const auto reference = run_rehoming_churn(config);
  // Same seed, repeated run: identical result.
  EXPECT_TRUE(operator_eq(run_rehoming_churn(config), reference));
  // Same seed, any shard count (and a multi-worker run): identical result.
  for (const std::size_t shards : {2u, 8u}) {
    config.bgp.shards = shards;
    config.bgp.shard_workers = shards == 8 ? 4 : 0;
    EXPECT_TRUE(operator_eq(run_rehoming_churn(config), reference))
        << "churn diverged at " << shards << " shards";
  }
}

TEST(ShardedBgp, DfzStudyIsDeterministicAcrossShards) {
  DfzStudyConfig config = small_study(AddressingScenario::kLegacyBgp, 2);
  const auto reference = run_dfz_study(config);
  for (const std::size_t shards : {2u, 5u}) {
    config.bgp.shards = shards;
    EXPECT_TRUE(operator_eq(run_dfz_study(config), reference))
        << "study diverged at " << shards << " shards";
  }
}

}  // namespace
}  // namespace lispcp::routing
