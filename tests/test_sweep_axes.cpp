// Sweep-layer tests for the multi-topology additions: topology-size axes
// (per-point InternetSpec mutation, seed stability under axis reordering,
// parallel/serial determinism), the declarative failure-injection probe
// path, and the DFZ-study adapter's record round-trip through the JSON
// sink.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/dfz_adapter.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::scenario {
namespace {

using topo::ControlPlaneKind;

// ---------------------------------------------------------------------------
// Topology-size axes
// ---------------------------------------------------------------------------

SweepSpec tiny_topology_sweep() {
  SweepSpec spec;
  spec.named("topo")
      .base([](ExperimentConfig& config) {
        mapping::MappingSystemFactory::instance().apply_preset(
            ControlPlaneKind::kPce, config.spec);
        config.spec.seed = 5;
        config.traffic.sessions_per_second = 10;
        config.traffic.duration = sim::SimDuration::seconds(2);
        config.drain = sim::SimDuration::seconds(5);
      })
      .axis(Axis::domains({2, 3}))
      .axis(Axis::providers_per_domain({1, 2}));
  return spec;
}

TEST(TopologyAxes, MutateInternetSpecPerPoint) {
  auto spec = tiny_topology_sweep();
  spec.axis(Axis::hosts_per_domain({2, 4}));
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 8u);
  // First axis slowest: domains=2 for the first four points.
  EXPECT_EQ(points[0].config.spec.domains, 2u);
  EXPECT_EQ(points[0].config.spec.providers_per_domain, 1u);
  EXPECT_EQ(points[0].config.spec.hosts_per_domain, 2u);
  EXPECT_EQ(points[7].config.spec.domains, 3u);
  EXPECT_EQ(points[7].config.spec.providers_per_domain, 2u);
  EXPECT_EQ(points[7].config.spec.hosts_per_domain, 4u);
  // Coordinates carry the default axis names in declaration order.
  EXPECT_EQ(points[0].coordinates[0].first, "domains");
  EXPECT_EQ(points[0].coordinates[1].first, "providers/domain");
  EXPECT_EQ(points[0].coordinates[2].first, "hosts/domain");
}

TEST(TopologyAxes, ParallelMatchesSerialOnQuickWorkload) {
  auto make_runner = [] {
    Runner runner(tiny_topology_sweep());
    runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
      const auto s = experiment.summary();
      record.set_int("sessions", s.sessions);
      record.set_int("established", s.established);
      record.set_int("drops", s.miss_drops);
    });
    return runner;
  };
  RunOptions serial;
  serial.jobs = 1;
  RunOptions parallel;
  parallel.jobs = 4;
  const auto a = make_runner().run(serial);
  const auto b = make_runner().run(parallel);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_TRUE(a == b);
  std::ostringstream ja, jb;
  a.to_json(ja);
  b.to_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(TopologyAxes, PerPointSeedsStableWhenTopologyAxisReordered) {
  auto forward = tiny_topology_sweep();
  forward.seed_mode(SeedMode::kPerPoint);

  SweepSpec reversed;
  reversed.named("topo")
      .base([](ExperimentConfig& config) { config.spec.seed = 5; })
      .axis(Axis::providers_per_domain({1, 2}))
      .axis(Axis::domains({2, 3}))
      .seed_mode(SeedMode::kPerPoint);

  const auto a = forward.expand();
  const auto b = reversed.expand();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& pa : a) {
    bool matched = false;
    for (const auto& pb : b) {
      if (pa.config.spec.domains == pb.config.spec.domains &&
          pa.config.spec.providers_per_domain ==
              pb.config.spec.providers_per_domain) {
        EXPECT_EQ(pa.seed, pb.seed) << pa.series;
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << pa.series;
  }
}

// ---------------------------------------------------------------------------
// Failure-injection probe
// ---------------------------------------------------------------------------

SweepSpec failure_sweep() {
  SweepSpec spec;
  spec.named("failure")
      .base([](ExperimentConfig& config) {
        mapping::MappingSystemFactory::instance().apply_preset(
            ControlPlaneKind::kPce, config.spec);
        config.spec.domains = 4;
        config.spec.providers_per_domain = 2;
        config.spec.seed = 11;
        config.traffic.sessions_per_second = 20;
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.drain = sim::SimDuration::seconds(5);
        config.failure.fail_at = sim::SimTime{} + sim::SimDuration::seconds(2);
      })
      .axis(Axis::labeled(
          "arm",
          {{"reference", [](ExperimentConfig&) {}},
           {"outage",
            [](ExperimentConfig& config) {
              config.failure.mode = FailurePlan::Mode::kLinkOutage;
            }},
           {"outage+controller", [](ExperimentConfig& config) {
              config.failure.mode = FailurePlan::Mode::kLinkOutage;
              config.failure.arm_failover = true;
              config.failure.health.hello_interval =
                  sim::SimDuration::millis(100);
              config.failure.health.reply_timeout = sim::SimDuration::millis(50);
              config.failure.health.down_threshold = 2;
            }}}));
  return spec;
}

Runner failure_runner() {
  Runner runner(failure_sweep());
  runner.probe_factory(FailureProbe::make);
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    record.set_int("established", experiment.summary().established);
  });
  return runner;
}

TEST(FailureProbe, InjectsOutageAndReportsRecoveryFields) {
  const auto result = failure_runner().run({});
  ASSERT_EQ(result.size(), 3u);
  const auto& reference = result.records()[0];
  const auto& outage = result.records()[1];
  const auto& controlled = result.records()[2];

  ASSERT_NE(reference.find("link-down drops"), nullptr);
  EXPECT_EQ(reference.find("link-down drops")->as_int(), 0u);
  EXPECT_EQ(reference.find("detect ms"), nullptr);

  EXPECT_GT(outage.find("link-down drops")->as_int(), 0u);
  EXPECT_EQ(outage.find("flows re-pushed"), nullptr);

  ASSERT_NE(controlled.find("detect ms"), nullptr);
  ASSERT_NE(controlled.find("bound ms"), nullptr);
  EXPECT_GT(controlled.find("detect ms")->as_real(), 0.0);
  EXPECT_LE(controlled.find("detect ms")->as_real(),
            controlled.find("bound ms")->as_real());
  EXPECT_GT(controlled.find("hellos sent")->as_int(), 0u);
  // Recovery confines the loss: the controlled arm completes more sessions.
  EXPECT_GT(controlled.find("established")->as_int(),
            outage.find("established")->as_int());
}

TEST(FailureProbe, DeterministicAcrossJobCounts) {
  RunOptions serial;
  serial.jobs = 1;
  RunOptions parallel;
  parallel.jobs = 4;
  const auto a = failure_runner().run(serial);
  const auto b = failure_runner().run(parallel);
  EXPECT_TRUE(a == b);
  std::ostringstream ja, jb;
  a.to_json(ja);
  b.to_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(FailureProbe, TransientOutageOmitsDetectionLatency) {
  // After a restore, the monitor's last transition is the up-transition, so
  // "detect ms" would be the wrong quantity — the probe must omit it.
  SweepSpec spec = failure_sweep();
  spec.base([](ExperimentConfig& config) {
    config.failure.outage_duration = sim::SimDuration::seconds(1);
  });
  Runner runner(std::move(spec));
  runner.probe_factory(FailureProbe::make);
  const auto result = runner.run({});
  ASSERT_EQ(result.size(), 3u);
  const auto& controlled = result.records()[2];
  EXPECT_EQ(controlled.find("detect ms"), nullptr);
  EXPECT_EQ(controlled.find("bound ms"), nullptr);
  // The rest of the recovery fields still report.
  EXPECT_NE(controlled.find("flows re-pushed"), nullptr);
  EXPECT_NE(controlled.find("hellos sent"), nullptr);
}

TEST(FailureProbe, RandomOutageProcessIsSeedDeterministic) {
  auto make = [](std::uint64_t seed) {
    SweepSpec spec;
    spec.base([seed](ExperimentConfig& config) {
      mapping::MappingSystemFactory::instance().apply_preset(
          ControlPlaneKind::kPce, config.spec);
      config.spec.domains = 4;
      config.spec.providers_per_domain = 2;
      config.spec.seed = 11;
      config.traffic.sessions_per_second = 10;
      config.traffic.duration = sim::SimDuration::seconds(5);
      config.drain = sim::SimDuration::seconds(3);
      config.failure.mode = FailurePlan::Mode::kRandomOutages;
      config.failure.until = sim::SimTime{} + sim::SimDuration::seconds(5);
      config.failure.mtbf = sim::SimDuration::seconds(2);
      config.failure.mttr = sim::SimDuration::seconds(1);
      config.failure.process_seed = seed;
    });
    Runner runner(std::move(spec));
    runner.probe_factory(FailureProbe::make);
    return runner.run({});
  };
  const auto a = make(7);
  const auto b = make(7);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_NE(a.records()[0].find("outages"), nullptr);
  EXPECT_EQ(a.records()[0].find("outages")->as_int(),
            b.records()[0].find("outages")->as_int());
}

// ---------------------------------------------------------------------------
// DFZ adapter
// ---------------------------------------------------------------------------

SweepSpec dfz_sweep() {
  SweepSpec spec;
  spec.named("dfz")
      .base([](ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 2;
        config.dfz.internet.transit_count = 3;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 7;
        // Keep the record's reported seed honest on the adapter path (the
        // pattern bench/f2_rib_scaling documents).
        config.spec.seed = config.dfz.internet.seed;
      })
      .axis(dfz::stub_sites({8, 12}))
      .axis(dfz::scenarios());
  return spec;
}

TEST(DfzAdapter, AxesMutateTheDfzSection) {
  auto spec = dfz_sweep();
  spec.axis(dfz::deaggregation({1, 4}));
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 8u);
  EXPECT_EQ(points[0].config.dfz.internet.stub_count, 8u);
  EXPECT_EQ(points[0].config.dfz.scenario,
            routing::AddressingScenario::kLegacyBgp);
  EXPECT_EQ(points[0].config.dfz.deaggregation_factor, 1u);
  EXPECT_EQ(points[7].config.dfz.internet.stub_count, 12u);
  EXPECT_EQ(points[7].config.dfz.scenario,
            routing::AddressingScenario::kLispRlocOnly);
  EXPECT_EQ(points[7].config.dfz.deaggregation_factor, 4u);
}

TEST(DfzAdapter, StudyExecutorWritesTypedRecords) {
  Runner runner(dfz_sweep());
  runner.execute(dfz::run_study);
  const auto result = runner.run({});
  ASSERT_EQ(result.size(), 4u);
  for (const auto& record : result.records()) {
    ASSERT_NE(record.find("DFZ table"), nullptr);
    EXPECT_GT(record.find("DFZ table")->as_int(), 0u);
    ASSERT_NE(record.find("mean RIB"), nullptr);
    EXPECT_EQ(record.find("mean RIB")->kind(), Field::Kind::kReal);
    ASSERT_NE(record.find("updates"), nullptr);
    ASSERT_NE(record.find("converge ms"), nullptr);
  }
  // The premise itself: the legacy DFZ carries the stub prefixes the
  // Loc/ID split keeps out.
  const auto& legacy = result.records()[0];
  const auto& lisp = result.records()[1];
  EXPECT_GT(legacy.find("DFZ table")->as_int(),
            lisp.find("DFZ table")->as_int());
  EXPECT_EQ(legacy.find("mapping entries")->as_int(), 0u);
  EXPECT_GT(lisp.find("mapping entries")->as_int(), 0u);
}

TEST(DfzAdapter, RecordsRoundTripThroughJsonSink) {
  Runner runner(dfz_sweep());
  runner.execute(dfz::run_study);
  const auto result = runner.run({});
  std::ostringstream os;
  result.to_json(os);
  const auto json = os.str();
  // Coordinates and metric fields land in the artifact with their values.
  EXPECT_NE(json.find("\"stub sites\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"stub sites\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"legacy-bgp\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"lisp-rloc-only\""), std::string::npos);
  EXPECT_NE(json.find("\"DFZ table\": "), std::string::npos);
  const auto expected_table =
      "\"DFZ table\": " +
      std::to_string(result.records()[0].find("DFZ table")->as_int());
  EXPECT_NE(json.find(expected_table), std::string::npos);
  // And the sink stays deterministic across job counts on the executor path.
  Runner parallel_runner(dfz_sweep());
  parallel_runner.execute(dfz::run_study);
  RunOptions options;
  options.jobs = 4;
  std::ostringstream parallel_os;
  parallel_runner.run(options).to_json(parallel_os);
  EXPECT_EQ(json, parallel_os.str());
}

TEST(DfzAdapter, ChurnExecutorReportsTheContrast) {
  Runner runner(dfz_sweep());
  runner.execute(dfz::run_churn);
  const auto result = runner.run({});
  ASSERT_EQ(result.size(), 4u);
  const auto& legacy = result.records()[0];
  const auto& lisp = result.records()[1];
  EXPECT_GT(legacy.find("updates")->as_int(), 0u);
  EXPECT_GT(legacy.find("ASes touched")->as_int(), 0u);
  EXPECT_EQ(lisp.find("updates")->as_int(), 0u);
  EXPECT_EQ(lisp.find("ASes touched")->as_int(), 0u);
}

TEST(DfzAdapter, ShardedBaseMutationLeavesRecordsByteIdentical) {
  // dfz::sharded is the --shards plumbing: it must change the engine
  // partitioning and nothing observable.
  auto reference_spec = dfz_sweep();
  reference_spec.base(dfz::sharded(1));
  Runner reference(std::move(reference_spec));
  reference.execute(dfz::run_study);

  auto sharded_spec = dfz_sweep();
  sharded_spec.base(dfz::sharded(4));
  Runner sharded(std::move(sharded_spec));
  sharded.execute(dfz::run_study);

  EXPECT_EQ(sharded.spec().base_config().dfz.bgp.shards, 4u);
  EXPECT_TRUE(reference.run({}) == sharded.run({}));
}

TEST(DfzAdapter, ReplicatedChurnSweepIsJobCountInvariant) {
  auto make = [] {
    auto spec = dfz_sweep();
    spec.seed_mode(SeedMode::kPerPoint).replications(3);
    Runner runner(std::move(spec));
    runner.execute(dfz::run_churn);
    return runner;
  };
  RunOptions serial;
  RunOptions parallel;
  parallel.jobs = 4;
  const auto a = make().run(serial);
  const auto b = make().run(parallel);
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(a.replicated());
  // Replicas run differently seeded topologies, so the churn spread is a
  // real spread; the aggregate view carries it.
  const auto agg = a.aggregate();
  ASSERT_EQ(agg.size(), 4u);
  for (const auto& record : agg.records()) {
    ASSERT_NE(record.find("replicas"), nullptr);
    EXPECT_EQ(record.find("replicas")->as_int(), 3u);
    ASSERT_NE(record.find("updates mean"), nullptr);
    ASSERT_NE(record.find("updates sd"), nullptr);
  }
}

}  // namespace
}  // namespace lispcp::scenario
