// MappingSystem seam tests: the factory registry, the preset/creation
// round trip, the per-ITR resolution strategies each system installs, and
// — the load-bearing one — seed parity: for every control plane the
// factory-built Experiment must reproduce the exact ExperimentSummary
// counters measured on the seed's flag-based construction (same seed →
// identical sessions / established / miss_events / miss_drops /
// encapsulated).
#include <gtest/gtest.h>

#include <algorithm>

#include "mapping/mapping_system.hpp"
#include "scenario/experiment.hpp"

namespace lispcp {
namespace {

using mapping::ControlPlaneKind;
using mapping::MappingSystemFactory;
using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::InternetSpec;

const std::vector<ControlPlaneKind> kAllKinds = {
    ControlPlaneKind::kPlainIp,   ControlPlaneKind::kNoMapping,
    ControlPlaneKind::kAltDrop,   ControlPlaneKind::kAltQueue,
    ControlPlaneKind::kAltForward, ControlPlaneKind::kCons,
    ControlPlaneKind::kNerd,      ControlPlaneKind::kMapServer,
    ControlPlaneKind::kMsReplicated, ControlPlaneKind::kPce};

TEST(MappingSystemFactory, AllBuiltinKindsAreRegistered) {
  auto& factory = MappingSystemFactory::instance();
  const auto kinds = factory.kinds();
  for (auto kind : kAllKinds) {
    EXPECT_TRUE(factory.contains(kind)) << factory.name(kind);
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), kind), kinds.end());
  }
  EXPECT_EQ(kinds.size(), kAllKinds.size());
}

TEST(MappingSystemFactory, NamesAreStable) {
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kPlainIp), "plain-ip");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kNoMapping), "lisp-none");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kAltDrop), "lisp-alt(drop)");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kAltQueue),
               "lisp-alt(queue)");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kAltForward),
               "lisp-alt(cp-fwd)");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kCons), "lisp-cons");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kNerd), "lisp-nerd");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kMapServer), "lisp-ms");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kMsReplicated),
               "lisp-ms-repl");
  EXPECT_STREQ(mapping::to_string(ControlPlaneKind::kPce), "lisp-pce");
}

TEST(MappingSystemFactory, CreateReturnsMatchingKind) {
  for (auto kind : kAllKinds) {
    const auto spec = InternetSpec::preset(kind);
    const auto system = MappingSystemFactory::instance().create(spec);
    ASSERT_NE(system, nullptr);
    EXPECT_EQ(system->kind(), kind) << mapping::to_string(kind);
  }
}

TEST(MappingSystemFactory, ComparisonSetExcludesBaselines) {
  const auto compared = MappingSystemFactory::instance().comparison_kinds();
  EXPECT_EQ(std::find(compared.begin(), compared.end(),
                      ControlPlaneKind::kPlainIp),
            compared.end());
  EXPECT_EQ(std::find(compared.begin(), compared.end(),
                      ControlPlaneKind::kNoMapping),
            compared.end());
  // Every real mapping system is compared, the new tier included.
  EXPECT_EQ(compared.size(), kAllKinds.size() - 2);
  EXPECT_NE(std::find(compared.begin(), compared.end(),
                      ControlPlaneKind::kMsReplicated),
            compared.end());
}

TEST(MappingSystemFactory, UnregisteredKindThrows) {
  InternetSpec spec;
  spec.kind = static_cast<ControlPlaneKind>(240);
  EXPECT_THROW(topo::Internet{spec}, std::invalid_argument);
  EXPECT_THROW(InternetSpec::preset(static_cast<ControlPlaneKind>(240)),
               std::invalid_argument);
}

// --- Installed resolution strategies ---------------------------------------

ExperimentConfig small_config(ControlPlaneKind kind, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 6;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = seed;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(10);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

TEST(MappingSystem, InstallsTheExpectedItrStrategy) {
  const std::vector<std::pair<ControlPlaneKind, const char*>> expectations = {
      {ControlPlaneKind::kPlainIp, "push-only"},
      {ControlPlaneKind::kNoMapping, "push-only"},
      {ControlPlaneKind::kAltDrop, "unicast-pull"},
      {ControlPlaneKind::kCons, "unicast-pull(record-route)"},
      {ControlPlaneKind::kNerd, "push-only"},
      {ControlPlaneKind::kMapServer, "unicast-pull"},
      {ControlPlaneKind::kMsReplicated, "replica-pull"},
      {ControlPlaneKind::kPce, "push-only"},
  };
  for (const auto& [kind, strategy] : expectations) {
    auto spec = InternetSpec::preset(kind);
    spec.domains = 4;
    topo::Internet internet(spec);
    for (auto& dom : internet.domains()) {
      for (auto* xtr : dom.xtrs) {
        ASSERT_NE(xtr->resolution(), nullptr) << mapping::to_string(kind);
        EXPECT_STREQ(xtr->resolution()->name(), strategy)
            << mapping::to_string(kind);
      }
    }
  }
}

TEST(MappingSystem, StatsReportInfrastructureFootprint) {
  {
    auto spec = InternetSpec::preset(ControlPlaneKind::kAltDrop);
    spec.domains = 8;
    spec.overlay_fanout = 4;
    topo::Internet internet(spec);
    const auto stats = internet.mapping_system().stats();
    EXPECT_EQ(stats.infrastructure_nodes, internet.overlay().size());
    EXPECT_GT(stats.database_records, 0u);
  }
  {
    auto spec = InternetSpec::preset(ControlPlaneKind::kNerd);
    spec.domains = 4;
    topo::Internet internet(spec);
    const auto stats = internet.mapping_system().stats();
    EXPECT_EQ(stats.infrastructure_nodes, 1u);
    EXPECT_EQ(stats.database_records, 4u);
  }
  {
    auto spec = InternetSpec::preset(ControlPlaneKind::kPce);
    spec.domains = 4;
    topo::Internet internet(spec);
    EXPECT_EQ(internet.mapping_system().stats().infrastructure_nodes, 4u);
  }
}

// --- Seed parity ------------------------------------------------------------

struct GoldenCounters {
  ControlPlaneKind kind;
  std::uint64_t sessions;
  std::uint64_t established;
  std::uint64_t miss_events;
  std::uint64_t miss_drops;
  std::uint64_t encapsulated;
};

// Captured by running this exact configuration (small_config, seed 42) on
// the seed's flag-based Internet::build() before the factory refactor.  The
// factory-built path must reproduce them bit-for-bit: any drift means the
// refactor changed behaviour, not just structure.
const GoldenCounters kSeedGoldens[] = {
    {ControlPlaneKind::kPlainIp, 203, 203, 0, 0, 0},
    {ControlPlaneKind::kAltDrop, 203, 203, 33, 44, 2233},
    {ControlPlaneKind::kAltQueue, 203, 203, 27, 0, 2233},
    {ControlPlaneKind::kAltForward, 203, 203, 39, 0, 2181},
    {ControlPlaneKind::kCons, 203, 203, 32, 46, 2233},
    {ControlPlaneKind::kNerd, 203, 203, 0, 0, 2233},
    {ControlPlaneKind::kMapServer, 203, 203, 33, 44, 2233},
    {ControlPlaneKind::kPce, 203, 203, 0, 0, 2233},
};

TEST(MappingSystemParity, FactoryBuildReproducesSeedCounters) {
  for (const auto& golden : kSeedGoldens) {
    Experiment experiment(small_config(golden.kind));
    const auto s = experiment.run();
    EXPECT_EQ(s.sessions, golden.sessions) << mapping::to_string(golden.kind);
    EXPECT_EQ(s.established, golden.established)
        << mapping::to_string(golden.kind);
    EXPECT_EQ(s.miss_events, golden.miss_events)
        << mapping::to_string(golden.kind);
    EXPECT_EQ(s.miss_drops, golden.miss_drops)
        << mapping::to_string(golden.kind);
    EXPECT_EQ(s.encapsulated, golden.encapsulated)
        << mapping::to_string(golden.kind);
  }
}

TEST(MappingSystemParity, EveryKindIsDeterministicPerSeed) {
  // The new kinds have no seed-era golden; determinism is the enforceable
  // half of the parity contract for them (and a regression tripwire for
  // everything else at a second seed).
  for (auto kind : MappingSystemFactory::instance().kinds()) {
    const auto first = Experiment(small_config(kind, 7)).run();
    const auto second = Experiment(small_config(kind, 7)).run();
    EXPECT_EQ(first.sessions, second.sessions) << mapping::to_string(kind);
    EXPECT_EQ(first.established, second.established)
        << mapping::to_string(kind);
    EXPECT_EQ(first.miss_events, second.miss_events)
        << mapping::to_string(kind);
    EXPECT_EQ(first.miss_drops, second.miss_drops)
        << mapping::to_string(kind);
    EXPECT_EQ(first.encapsulated, second.encapsulated)
        << mapping::to_string(kind);
  }
}

}  // namespace
}  // namespace lispcp
