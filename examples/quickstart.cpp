// quickstart — the five-minute tour of the library.
//
// Builds the paper's Fig. 1 scene (two dual-homed LISP domains, a DNS
// hierarchy, a PCE in front of each domain's DNS servers), runs one
// host-to-host session, and prints what happened at each layer.
//
//   $ ./quickstart
#include <iostream>

#include "scenario/experiment.hpp"

using namespace lispcp;

int main() {
  // 1. Describe the internet you want.  Presets configure the control
  //    plane; everything else (latencies, multihoming, cache sizes) has
  //    sane 2008-calibrated defaults you can override.
  auto spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  spec.domains = 2;
  spec.hosts_per_domain = 2;
  spec.providers_per_domain = 2;  // Fig. 1: providers A,B and X,Y
  spec.seed = 2008;

  // 2. Build it.  This wires hosts, border tunnel routers, resolvers,
  //    authoritative servers, PCEs, IRC engines and all routing tables.
  topo::Internet internet(spec);

  std::cout << "Built an internet with " << internet.network().node_count()
            << " nodes and " << internet.network().links().size()
            << " links.\n";
  std::cout << "Domain d0 EID prefix: "
            << internet.domain(0).eid_prefix.to_string() << ", RLOCs:";
  for (auto* xtr : internet.domain(0).xtrs) {
    std::cout << " " << xtr->rloc().to_string();
  }
  std::cout << "\n\n";

  // 3. Open a session: h0.d0 looks up h0.d1.example in the DNS and opens a
  //    TCP connection to the answered EID.
  workload::Host& client = *internet.domain(0).hosts[0];
  const auto session_id = client.start_session(internet.host_name(1, 0));
  std::cout << "Session " << session_id << ": " << client.name()
            << " -> h0.d1.example\n";

  // 4. Run the simulation.
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(10));

  // 5. Inspect the outcome.
  const auto& metrics = internet.metrics();
  std::cout << "\nResults\n"
            << "  sessions established : " << metrics.established() << "\n"
            << "  T_DNS                : " << metrics.t_dns().mean() / 1000.0
            << " ms\n"
            << "  T_setup (paper §1)   : " << metrics.t_setup().mean() / 1000.0
            << " ms\n"
            << "  SYN retransmissions  : " << metrics.syn_retransmissions()
            << "  <- claim (i): first packet not dropped\n";

  const auto& pce = *internet.domain(0).pce;
  std::cout << "\nPCE at " << pce.name() << "\n"
            << "  DNS replies snooped  : " << pce.stats().dns_replies_snooped
            << "\n"
            << "  port-P messages      : " << pce.stats().port_p_received << "\n"
            << "  flows configured     : " << pce.stats().flows_configured
            << "\n"
            << "  mapping-config slack : " << pce.push_slack().mean() / 1000.0
            << " ms after the DNS query (claim (ii): inside T_DNS)\n";

  const auto& itr = *internet.domain(0).xtrs[0];
  std::cout << "\nITR " << itr.name() << "\n"
            << "  packets encapsulated : " << itr.stats().encapsulated << "\n"
            << "  flow tuples in use   : " << itr.stats().flow_tuple_used
            << "  (Step 7b one-way tunnels)\n"
            << "  mapping misses       : " << itr.stats().miss_events << "\n";
  return 0;
}
