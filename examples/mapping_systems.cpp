// mapping_systems — side-by-side tour of the LISP control planes.
//
// Runs the identical workload over ALT (drop / queue / data-forward), CONS,
// NERD, Map-Server/Map-Resolver (draft-lisp-ms) and the PCE control plane
// and prints a comparison table: this is the paper's §1 argument as a
// program.
//
//   $ ./mapping_systems [sessions_per_second]
#include <cstdlib>
#include <iostream>

#include "metrics/table.hpp"
#include "scenario/experiment.hpp"

using namespace lispcp;

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 25.0;

  metrics::Table table({"control plane", "sessions", "miss events", "drops",
                        "SYN retx", "T_setup p50 (ms)", "T_setup p99 (ms)"});

  // Every registered mapping system, baselines included: the registry is
  // the comparison set, so a newly registered control plane appears here
  // without touching this file.
  for (auto kind : mapping::MappingSystemFactory::instance().kinds()) {
    scenario::ExperimentConfig config;
    config.spec = topo::InternetSpec::preset(kind);
    config.spec.domains = 12;
    config.spec.hosts_per_domain = 2;
    config.spec.providers_per_domain = 2;
    config.spec.cache_capacity = 8;
    config.spec.seed = 1;
    config.traffic.sessions_per_second = rate;
    config.traffic.duration = sim::SimDuration::seconds(20);
    config.drain = sim::SimDuration::seconds(40);

    scenario::Experiment experiment(std::move(config));
    const auto s = experiment.run();
    table.add_row({topo::to_string(kind), metrics::Table::integer(s.sessions),
                   metrics::Table::integer(s.miss_events),
                   metrics::Table::integer(s.miss_drops),
                   metrics::Table::integer(s.syn_retransmissions),
                   metrics::Table::num(s.t_setup_p50_ms),
                   metrics::Table::num(s.t_setup_p99_ms)});
  }

  std::cout << "Identical workload (" << rate
            << " sessions/s, Zipf 0.9, 12 sites, cache=8) under each control "
               "plane:\n\n";
  table.print(std::cout);
  std::cout
      << "\nReading guide: lisp-alt(drop) loses first packets (3s p99); the "
         "queue and cp-fwd palliatives trade drops for delay or overlay "
         "detours; NERD needs the whole database everywhere; lisp-pce "
         "matches plain-ip — no drops, no queueing, no pull latency.\n";
  return 0;
}
