// sweep_quickstart — the declarative sweep API in ~40 lines.
//
// Declares a control-plane × cache-size sweep on a small topology, runs it
// on 4 threads, prints both renderings (flat and pivoted), and writes the
// JSON artifact a CI job would archive.  Compare with examples/quickstart
// (one hand-built experiment) to see what SweepSpec/Runner/ResultSet buy.
#include <iostream>
#include <sstream>

#include "scenario/sweep.hpp"

using namespace lispcp;
using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;

int main() {
  // 1. The parameter space: a canonical base config, two axes.
  auto spec = SweepSpec::steady_state();
  spec.named("quickstart")
      .base([](ExperimentConfig& config) {
        config.spec.domains = 6;
        config.traffic.duration = sim::SimDuration::seconds(10);
      })
      .axis(Axis::control_planes(
          "control plane",
          {topo::ControlPlaneKind::kAltDrop, topo::ControlPlaneKind::kPce},
          {"alt-drop", "pce"}))
      .axis(Axis::integers("cache entries", {4, 32},
                           [](ExperimentConfig& config, std::uint64_t v) {
                             config.spec.cache_capacity = v;
                           }));

  // 2. Measurement: probes write named fields into each point's record.
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("drops", s.miss_drops);
    record.set_real("T_setup p95 (ms)", s.t_setup_p95_ms);
  });

  // 3. Execution: 4 points, 4 threads; records come back in point order,
  //    byte-identical to a serial run.
  scenario::RunOptions options;
  options.jobs = 4;
  const auto result = runner.run(options);

  std::cout << "flat:\n";
  result.table().print(std::cout);
  std::cout << "\npivoted on cache size:\n";
  result.pivot("cache entries", "control plane", {"drops"}).print(std::cout);

  std::cout << "\nJSON artifact:\n";
  std::ostringstream json;
  result.to_json(json);
  std::cout << json.str();
  return 0;
}
