// dfz_growth — why the Locator/Identifier split exists, as a program.
//
// Converges BGP over the same synthetic Internet twice — once with every
// site's prefix injected into the default-free zone (today's Internet),
// once with only provider RLOC aggregates routable and the site blocks
// held by the LISP mapping system — and prints the table-size and churn
// contrast the paper's §1 opens with.
//
//   $ ./dfz_growth [stub_sites] [deaggregation_factor] [shards]
#include <cstdlib>
#include <iostream>

#include "metrics/table.hpp"
#include "routing/dfz_study.hpp"

using namespace lispcp;

int main(int argc, char** argv) {
  // A negative atoi result would wrap through size_t to something huge
  // (e.g. 2^64-1 shards), so validate instead of casting blindly.
  const auto positive_arg = [&](int index, long fallback) -> std::size_t {
    if (argc <= index) return static_cast<std::size_t>(fallback);
    const long v = std::atol(argv[index]);
    if (v <= 0) {
      std::cerr << "usage: dfz_growth [stub_sites] [deaggregation_factor] "
                   "[shards]  (positive integers)\n";
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  };
  const std::size_t stubs = positive_arg(1, 150);
  const std::size_t deagg = positive_arg(2, 4);
  const std::size_t shards = positive_arg(3, 1);

  routing::DfzStudyConfig config;
  config.internet.stub_count = stubs;
  config.internet.providers_per_stub = 2;
  config.deaggregation_factor = deagg;
  // Convergence-engine partitions: the table is identical for any value.
  config.bgp.shards = shards;

  metrics::Table table({"scenario", "DFZ table", "mean RIB", "updates",
                        "converge ms", "mapping entries", "rehoming updates",
                        "ASes touched by a flap"});
  for (const auto scenario : {routing::AddressingScenario::kLegacyBgp,
                              routing::AddressingScenario::kLispRlocOnly}) {
    config.scenario = scenario;
    const auto result = routing::run_dfz_study(config);
    const auto churn = routing::run_rehoming_churn(config);
    table.add_row({to_string(scenario),
                   metrics::Table::integer(result.dfz_table_size),
                   metrics::Table::num(result.mean_rib_size, 1),
                   metrics::Table::integer(result.update_messages),
                   metrics::Table::num(result.convergence_ms, 1),
                   metrics::Table::integer(result.mapping_system_entries),
                   metrics::Table::integer(churn.update_messages),
                   metrics::Table::integer(churn.ases_touched)});
  }

  std::cout << stubs << " stub sites, de-aggregation factor " << deagg
            << ":\n\n";
  table.print(std::cout);
  std::cout << "\nEvery site prefix (x de-aggregation) lands in every DFZ "
               "router under legacy BGP; under LISP the DFZ holds only the "
               "provider aggregates and a site re-homing is a mapping push "
               "that no BGP speaker ever hears about.\n";
  return 0;
}
