// failover — provider-link failure and TE recovery.
//
// A dual-homed domain is serving traffic when its primary provider link
// fails.  The IRC engine marks the border link unusable and the PCE
// re-pushes every active flow's tuple onto the surviving RLOC; traffic
// continues without re-resolving a single mapping.  The example prints the
// inbound byte counts per provider in 10-second phases around the failure.
//
//   $ ./failover
#include <iostream>

#include "metrics/table.hpp"
#include "scenario/experiment.hpp"

using namespace lispcp;

int main() {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  config.spec.domains = 6;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = irc::TePolicy::kRoundRobin;
  config.spec.seed = 31;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(20);

  scenario::Experiment experiment(std::move(config));
  auto& internet = experiment.internet();
  auto& dom0 = internet.domain(0);

  const auto far0 = dom0.provider_links[0]->peer_of(dom0.xtrs[0]->id());
  const auto far1 = dom0.provider_links[1]->peer_of(dom0.xtrs[1]->id());

  // Sample inbound bytes per provider every 10 seconds.
  struct Phase {
    std::uint64_t a;
    std::uint64_t b;
  };
  std::vector<Phase> phases;
  auto w0 = dom0.provider_links[0]->open_window(far0);
  auto w1 = dom0.provider_links[1]->open_window(far1);
  for (int tick = 1; tick <= 4; ++tick) {
    internet.sim().schedule(sim::SimDuration::seconds(10 * tick), [&] {
      phases.push_back({dom0.provider_links[0]->bytes_in_window(far0, w0),
                        dom0.provider_links[1]->bytes_in_window(far1, w1)});
      w0 = dom0.provider_links[0]->open_window(far0);
      w1 = dom0.provider_links[1]->open_window(far1);
    });
  }

  // At t = 15 s: provider A's link dies.  The failover controller reacts:
  // IRC stops selecting RLOC A, the PCE re-pushes active flows, and the
  // cached mappings' locator-status is updated at the border routers.
  internet.sim().schedule(sim::SimDuration::seconds(15), [&] {
    std::cout << "[t=15s] provider A link DOWN; re-optimising "
              << dom0.pce->stats().flows_configured << " active flows\n";
    dom0.provider_links[0]->set_up(false);

    // What routing convergence would do (IGP inside the domain, BGP at the
    // provider edge): egress and domain-bound infra traffic move to the
    // surviving border router.
    auto& net = internet.network();
    net.add_route(dom0.internal_router->id(), net::Ipv4Prefix(),
                  dom0.xtrs[1]->id());
    net.add_route(internet.core_router().id(),
                  net::Ipv4Prefix(dom0.resolver->address(), 24),
                  dom0.xtrs[1]->id());

    // What the PCE control plane adds on top: the IRC engine stops
    // selecting RLOC A, cached locator status flips, and every active
    // flow's tuple is re-pushed with the surviving ingress RLOC.
    dom0.irc->set_link_usable(0, false);
    for (auto* xtr : dom0.xtrs) {
      xtr->set_rloc_reachability(dom0.xtrs[0]->rloc(), false);
    }
    dom0.control_plane->reoptimize();
  });

  const auto summary = experiment.run();

  std::cout << "\nInbound bytes into d0 by 10s phase:\n";
  metrics::Table table({"phase", "provider A", "provider B"});
  const char* labels[] = {"0-10s (both up)", "10-20s (A fails at 15s)",
                          "20-30s (recovered on B)", "30-40s (drain)"};
  for (std::size_t i = 0; i < phases.size(); ++i) {
    table.add_row({labels[i], metrics::Table::integer(phases[i].a),
                   metrics::Table::integer(phases[i].b)});
  }
  table.print(std::cout);

  std::cout << "\nsessions: " << summary.sessions
            << ", established: " << summary.established
            << ", connect failures: " << summary.connect_failures
            << "\nAfter the failure all inbound traffic shifts to provider B "
               "within one re-push — no mapping re-resolution, no control-"
               "plane round trips.\n";
  return 0;
}
