// te_multihoming — inbound traffic engineering with one-way tunnels.
//
// A dual-homed domain serves traffic to nine peers.  Under vanilla LISP its
// return traffic is pinned to the primary provider; under the PCE control
// plane the domain's IRC engine spreads new flows across providers by
// policy — while egress stays wherever internal routing points.  This is
// the paper's claim (iii) as a runnable demo.
//
//   $ ./te_multihoming [policy]     policy: rr | weighted | least | primary
#include <cstring>
#include <iostream>

#include "metrics/table.hpp"
#include "scenario/experiment.hpp"

using namespace lispcp;

namespace {

irc::TePolicy parse_policy(const char* arg) {
  if (std::strcmp(arg, "rr") == 0) return irc::TePolicy::kRoundRobin;
  if (std::strcmp(arg, "weighted") == 0) return irc::TePolicy::kCapacityWeighted;
  if (std::strcmp(arg, "least") == 0) return irc::TePolicy::kLeastLoaded;
  if (std::strcmp(arg, "primary") == 0) return irc::TePolicy::kPrimaryBackup;
  std::cerr << "unknown policy '" << arg << "', using least-loaded\n";
  return irc::TePolicy::kLeastLoaded;
}

struct InboundReport {
  std::uint64_t provider_a = 0;
  std::uint64_t provider_b = 0;
};

InboundReport run(topo::ControlPlaneKind kind, irc::TePolicy policy) {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(kind);
  config.spec.domains = 10;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = policy;
  config.spec.miss_policy = lisp::MissPolicy::kQueue;  // fair to the baseline
  config.spec.seed = 99;
  config.traffic.sessions_per_second = 50;
  config.traffic.duration = sim::SimDuration::seconds(30);

  scenario::Experiment experiment(std::move(config));
  auto& dom0 = experiment.internet().domain(0);
  const auto far0 = dom0.provider_links[0]->peer_of(dom0.xtrs[0]->id());
  const auto far1 = dom0.provider_links[1]->peer_of(dom0.xtrs[1]->id());
  const auto w0 = dom0.provider_links[0]->open_window(far0);
  const auto w1 = dom0.provider_links[1]->open_window(far1);
  experiment.run();
  return InboundReport{dom0.provider_links[0]->bytes_in_window(far0, w0),
                       dom0.provider_links[1]->bytes_in_window(far1, w1)};
}

void print(const char* label, const InboundReport& r) {
  const double total = static_cast<double>(r.provider_a + r.provider_b);
  std::cout << "  " << label << ": provider A " << r.provider_a << " B "
            << r.provider_b;
  if (total > 0) {
    std::cout << "  (" << static_cast<int>(100.0 * r.provider_a / total) << "% / "
              << static_cast<int>(100.0 * r.provider_b / total) << "%)";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto policy = argc > 1 ? parse_policy(argv[1])
                               : irc::TePolicy::kLeastLoaded;

  std::cout << "Inbound bytes into the dual-homed domain d0, by provider "
               "link:\n\n";
  print("vanilla LISP (gleaned) ", run(topo::ControlPlaneKind::kAltQueue, policy));
  print(("lisp-pce / " + irc::to_string(policy)).c_str(),
        run(topo::ControlPlaneKind::kPce, policy));
  std::cout << "\nVanilla LISP pins all return traffic to the primary "
               "provider (the flow's egress router); the PCE control plane "
               "steers it per policy using the RLOC_S field of the Step-7b "
               "tuple — ingress and egress routers differ per flow.\n";
  return 0;
}
