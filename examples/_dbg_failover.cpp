#include <iostream>
#include "scenario/experiment.hpp"
#include "sim/failure.hpp"
using namespace lispcp;
int main() {
  scenario::ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  config.spec.domains = 3;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = irc::TePolicy::kRoundRobin;
  config.spec.seed = 17;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(20);
  scenario::Experiment e(config);
  auto& internet = e.internet();
  sim::FailureSchedule failures(internet.network());
  failures.link_outage(*internet.domain(0).provider_links[0],
                       sim::SimTime::from_ns(10'000'000'000));
  auto s = e.run();
  std::cout << "sessions=" << s.sessions << " est=" << s.established
            << " dnsfail=" << s.dns_failures << " connfail=" << s.connect_failures
            << " drops_link_down=" << internet.network().counters().drops_link_down
            << " link0_up=" << internet.domain(0).provider_links[0]->is_up()
            << " outages=" << failures.outages_injected() << "\n";
  return 0;
}
